//! Shared helpers for the per-table / per-figure bench targets.
//!
//! Each bench binary regenerates one table or figure of the paper's
//! evaluation (Sec. 8) and prints it in a comparable layout; run them
//! all with `cargo bench --workspace`. Absolute joules/mm2 are model
//! outputs — the reproduction target is the *shape*: orderings, ratios
//! and crossovers (see EXPERIMENTS.md for paper-vs-measured).

use s2ta_core::{pool, Accelerator, ArchKind, ModelReport};
use s2ta_energy::comparators::LayerStats;
use s2ta_models::ModelSpec;
use s2ta_tensor::Matrix;

/// The master seed all benches share, for reproducible output.
pub const SEED: u64 = 42;

/// The canonical heterogeneous-serving scenario, shared verbatim by
/// the serving bench, the `serving_hetero` example, and the acceptance
/// test in `tests/serving.rs`: a mixed 2×S2TA-AW + 2×SA-ZVCG fleet
/// under a LeNet-heavy two-model mix, on which affinity placement must
/// beat earliest-free placement on both p99 latency and energy per
/// inference. Single-sourcing it keeps the three gates in lockstep
/// when the workload is retuned.
pub mod hetero_scenario {
    use s2ta_core::ArchKind;
    use s2ta_models::{cifar10_convnet, lenet5, ModelSpec};
    use s2ta_serve::{FixedPolicy, FleetSpec, WorkloadSpec};

    /// The two served models: LeNet-5 (latency-light) and the CIFAR-10
    /// convnet (heavier).
    pub fn models() -> Vec<ModelSpec> {
        vec![lenet5(), cifar10_convnet()]
    }

    /// The traffic: 160 requests at a 6000-cycle mean gap, LeNet
    /// taking two thirds of the mix.
    pub fn workload() -> WorkloadSpec {
        WorkloadSpec::mixed(super::SEED, 160, 6_000.0, vec![2.0, 1.0])
    }

    /// The mixed fleet: two S2TA-AW lanes plus two dense-baseline
    /// SA-ZVCG lanes.
    pub fn fleet_spec() -> FleetSpec {
        FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)])
    }

    /// The fixed batching policy both placements run under.
    pub fn policy() -> FixedPolicy {
        FixedPolicy { max_batch: 8, max_wait_cycles: 30_000 }
    }
}

/// The canonical **deep-model pipeline** scenario, shared verbatim by
/// the serving bench, the `serving_pipeline` example, and the
/// acceptance test in `tests/serving.rs`: the 14-layer `Deep-ConvNet`
/// served by a mixed 2×S2TA-AW + 2×SA-ZVCG fleet, on which
/// layer-pipelined placement (`PlacementStrategy::Pipelined`, 4 stages
/// across the 4 lanes) must beat monolithic earliest-free placement on
/// p99 latency by at least 1.1x at no worse throughput.
/// Single-sourcing it keeps the three gates in lockstep when the
/// workload is retuned.
pub mod pipeline_scenario {
    use s2ta_core::ArchKind;
    use s2ta_models::{deep_convnet, ModelSpec};
    use s2ta_serve::{FixedPolicy, Fleet, FleetSpec, WorkloadSpec};

    /// The served model: the deep serving convnet (14 layers).
    pub fn models() -> Vec<ModelSpec> {
        vec![deep_convnet()]
    }

    /// The traffic: a steady open-loop stream dense enough that
    /// monolithic lanes queue but a 4-stage pipeline keeps up.
    pub fn workload() -> WorkloadSpec {
        WorkloadSpec::uniform(super::SEED, 96, 8_000.0, 1)
    }

    /// The mixed fleet: two S2TA-AW lanes plus two dense-baseline
    /// SA-ZVCG lanes.
    pub fn fleet_spec() -> FleetSpec {
        FleetSpec::mixed(&[(ArchKind::S2taAw, 2), (ArchKind::SaZvcg, 2)])
    }

    /// The fixed batching policy both placements run under.
    pub fn policy() -> FixedPolicy {
        FixedPolicy { max_batch: 4, max_wait_cycles: 20_000 }
    }

    /// Stages of the pipeline under test (one per lane).
    pub const STAGES: usize = 4;

    /// The monolithic baseline fleet (earliest-free placement).
    pub fn monolithic_fleet() -> Fleet {
        Fleet::from_spec(fleet_spec()).with_policy(policy())
    }

    /// The pipelined fleet under test.
    pub fn pipelined_fleet() -> Fleet {
        monolithic_fleet().with_pipeline(STAGES)
    }
}

/// The canonical **cluster-scale** scenario, shared verbatim by the
/// cluster bench, the `serving_cluster` example, and CI's artifact
/// check: four narrow heterogeneous fleet shards (each 1×S2TA-AW +
/// 1×SA-ZVCG) behind the router tier, serving a diurnal ~1M-request
/// stream whose activation seeds are drawn from a bounded pool (so the
/// fleet-wide activation-profile cache stays hit-dominated at cluster
/// scale). On it, power-of-two-choices routing must beat random
/// routing on **global p99** (merged per-request samples) by at least
/// [`cluster_scenario::GATE_P99_SPEEDUP`] at equal goodput: queues are
/// unbounded, so every policy serves the identical request set and the
/// tail gap is attributable to routing alone.
pub mod cluster_scenario {
    use s2ta_core::ArchKind;
    use s2ta_models::{cifar10_convnet, deep_convnet, lenet5, ModelSpec};
    use s2ta_serve::{
        AutoscalePolicy, Cluster, DiurnalSpec, FixedPolicy, Fleet, FleetSpec, RateSegment,
        RoutingPolicy,
    };

    /// Shards behind the router.
    pub const SHARDS: usize = 4;

    /// Requests in the canonical stream (the "~1M requests is routine"
    /// scale target of the timer-wheel engine).
    pub const REQUESTS: usize = 1_000_000;

    /// Distinct activation seeds in the stream (bounds the
    /// activation-profile cache's working set: production traffic
    /// re-sees the same inputs, it does not invent a new tensor per
    /// request).
    pub const ACT_SEED_POOL: usize = 512;

    /// Minimum p2c-over-random global-p99 ratio the bench gates on.
    pub const GATE_P99_SPEEDUP: f64 = 1.15;

    /// Minimum host wall-time speedup of the shard-parallel driver
    /// over the serial driver the bench gates on (pre-routed `Random`
    /// tier at [`SHARDS`] shards on the full canonical day), when the
    /// host executor actually has parallelism (>= 2 workers).
    pub const GATE_PARALLEL_SPEEDUP: f64 = 2.0;

    /// The no-regression floor the parallel driver is gated on when
    /// the host is single-core (1 executor worker): wall-time speedup
    /// is physically unavailable, but the pre-routed tier must still
    /// not cost anything — in practice it wins slightly even serially,
    /// because each shard's day runs straight through (better cache
    /// locality than interleaving all shards per arrival).
    pub const GATE_PARALLEL_FLOOR_SINGLE_CORE: f64 = 0.9;

    /// The served models: LeNet-5 carries ~70% of the traffic, the
    /// CIFAR-10 convnet most of the rest, and the 14-layer
    /// Deep-ConvNet is the **rare** heavy request (~0.6%) whose
    /// long-running batches congest whichever shard drew them — the
    /// congestion that backlog-probing routing avoids and random
    /// routing queues behind. The rarity is load-bearing for the
    /// gate: at a few percent the heavy model's own service latency
    /// sits above the global p99, which then measures heavy-request
    /// service (routing-independent) instead of the light-request
    /// queueing delay that routing controls.
    pub fn models() -> Vec<ModelSpec> {
        vec![lenet5(), cifar10_convnet(), deep_convnet()]
    }

    /// The diurnal day: an off-peak valley, ramp shoulders, and a peak
    /// plateau that pushes the cluster near saturation — where routing
    /// quality decides the tail.
    pub fn workload() -> DiurnalSpec {
        DiurnalSpec {
            seed: super::SEED,
            requests: REQUESTS,
            segments: vec![
                RateSegment { duration_cycles: 400_000, mean_interarrival_cycles: 2_700.0 },
                RateSegment { duration_cycles: 200_000, mean_interarrival_cycles: 1_350.0 },
                RateSegment { duration_cycles: 600_000, mean_interarrival_cycles: 720.0 },
                RateSegment { duration_cycles: 200_000, mean_interarrival_cycles: 1_350.0 },
            ],
            mix: vec![12.0, 5.0, 0.1],
            act_seed_pool: ACT_SEED_POOL,
        }
    }

    /// One shard's lane composition: a narrow mixed fleet (one S2TA-AW
    /// lane plus one dense SA-ZVCG lane), so a single heavy batch
    /// meaningfully congests its shard.
    pub fn shard_spec() -> FleetSpec {
        FleetSpec::mixed(&[(ArchKind::S2taAw, 1), (ArchKind::SaZvcg, 1)])
    }

    /// The fixed batching policy every shard runs under. The short
    /// batching window keeps the queueing-free latency floor small,
    /// so the congestion component routing controls is not diluted
    /// out of the p99 ratio.
    pub fn policy() -> FixedPolicy {
        FixedPolicy { max_batch: 16, max_wait_cycles: 10_000 }
    }

    /// The shard fleets (queues unbounded: zero drops, so every
    /// routing policy serves the identical request set).
    pub fn shards() -> Vec<Fleet> {
        (0..SHARDS).map(|_| Fleet::from_spec(shard_spec()).with_policy(policy())).collect()
    }

    /// The cluster under a given routing policy, with one cluster-wide
    /// plan/profile cache (compile once for the cluster, not once per
    /// shard — identical simulated results, ~4x less host work).
    pub fn cluster(routing: RoutingPolicy) -> Cluster {
        Cluster::new(shards())
            .with_routing(routing)
            .with_router_seed(super::SEED)
            .with_shared_caches()
    }

    /// The autoscaler exercised by the (ungated) autoscaled run: grow
    /// a shard past a one-batch backlog, shed lanes when the valley
    /// empties it.
    pub fn autoscale() -> AutoscalePolicy {
        AutoscalePolicy {
            eval_interval_cycles: 100_000,
            scale_up_depth: 24,
            scale_down_depth: 2,
            min_lanes: 1,
        }
    }
}

/// The canonical **chaos** scenario, shared by the cluster bench's
/// fault-tolerance cell, the `serving_cluster` example's chaos trace,
/// and CI's artifact check: the [`cluster_scenario`] day replayed
/// under **random** routing with bounded admission queues and a
/// seeded fault schedule dominated by whole-shard outages (plus a
/// handful of lane crashes and slowdowns). Random routing is the
/// point: it probes nothing, so the only thing standing between an
/// outage and the tail is the fault machinery under test — health
/// failover at the router, bounded deadline-aware retries, and
/// degraded-mode shedding of the best-effort model.
///
/// Two gates, both recorded in `BENCH_cluster.json`: the **protected**
/// run (retries + failover + degraded mode) must hold strict-class
/// goodput at `>=` [`chaos_scenario::GATE_GOODPUT_RATIO`]`x` the
/// fault-free bounded baseline **and** global p99 at `<=`
/// [`chaos_scenario::GATE_P99_RATIO`]`x`; the **unprotected** run
/// (no retries, no failover, no shedding) must measurably violate
/// both — otherwise the schedule is too gentle to prove anything.
pub mod chaos_scenario {
    use super::cluster_scenario;
    use s2ta_serve::{Cluster, DegradedMode, FaultConfig, FaultSpec, RetryPolicy, RoutingPolicy};

    /// Per-model admission cap each shard runs under in the chaos
    /// runs. The fault-free cluster scenario is unbounded; graceful
    /// degradation needs an admission boundary to shed at, and an
    /// unprotected outage needs one to overflow.
    pub const QUEUE_CAPACITY: usize = 256;

    /// Strict-class model indexes (LeNet-5 and the CIFAR-10 convnet):
    /// the goodput gate is computed over these. The heavy Deep-ConvNet
    /// (index 2) is the best-effort class degraded mode sheds.
    pub const STRICT_MODELS: [usize; 2] = [0, 1];

    /// Minimum protected-over-baseline strict-class goodput ratio.
    pub const GATE_GOODPUT_RATIO: f64 = 0.99;

    /// Maximum protected-over-baseline global-p99 ratio.
    pub const GATE_P99_RATIO: f64 = 1.5;

    /// The seeded fault schedule, scaled to the measured fault-free
    /// `horizon_cycles` (the full day in the committed artifact, the
    /// 40k-request prefix in CI's smoke mode). Two time scales on
    /// purpose: a few **long shard outages** (mean `horizon/160`,
    /// ~7M cycles at full scale) that only router failover can defend
    /// against — every arrival sprayed at a dark shard waits out the
    /// window — and a **storm of short lane crashes** (mean
    /// `horizon/25_000`, ~44k cycles) whose damage is the cancelled
    /// in-flight work itself: bounded retries re-admit it in well
    /// under a tail budget, while the unprotected run fails every
    /// cancellation outright. The slowdowns exercise service
    /// inflation without dominating either gate.
    pub fn fault_spec(horizon_cycles: u64) -> FaultSpec {
        FaultSpec {
            seed: super::SEED ^ 0xc4a05,
            lane_crashes: 1_500,
            lane_slowdowns: 8,
            shard_outages: 16,
            horizon_cycles: horizon_cycles.max(1),
            mean_down_cycles: (horizon_cycles / 25_000).max(2),
            mean_outage_cycles: (horizon_cycles / 160).max(2),
            slowdown_factor: 3,
        }
    }

    /// The protected configuration: default bounded retries, router
    /// health failover, and degraded-mode shedding of the best-effort
    /// Deep-ConvNet once a lane is down and the shard backlog passes
    /// one queue-capacity's worth of requests.
    pub fn protected(horizon_cycles: u64) -> FaultConfig {
        FaultConfig {
            spec: fault_spec(horizon_cycles),
            retry: RetryPolicy::default(),
            hedge: None,
            degraded: Some(DegradedMode { backlog_threshold: 64, best_effort: vec![2] }),
            failover: true,
        }
    }

    /// The unprotected baseline over the identical schedule: no
    /// retries (every cancelled request fails), no failover, no
    /// shedding.
    pub fn unprotected(horizon_cycles: u64) -> FaultConfig {
        FaultConfig::unprotected(fault_spec(horizon_cycles))
    }

    /// The bounded-admission cluster every chaos run starts from:
    /// the canonical shards with [`QUEUE_CAPACITY`]-deep model queues,
    /// random routing, shared caches.
    pub fn cluster() -> Cluster {
        let shards = (0..cluster_scenario::SHARDS)
            .map(|_| {
                s2ta_serve::Fleet::from_spec(cluster_scenario::shard_spec())
                    .with_policy(cluster_scenario::policy())
                    .with_queue_capacity(QUEUE_CAPACITY)
            })
            .collect();
        Cluster::new(shards)
            .with_routing(RoutingPolicy::Random)
            .with_router_seed(super::SEED)
            .with_shared_caches()
    }
}

/// Writes a machine-readable bench artifact (e.g. `BENCH_serving.json`)
/// to the workspace root, so the perf trajectory is trackable across
/// PRs, and returns the path written. Benches run from varying working
/// directories, so the path is anchored at this crate's manifest.
pub fn write_bench_artifact(file_name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(file_name);
    std::fs::write(&path, contents).expect("bench artifact must be writable");
    path
}

/// Formats an `f64` for the JSON artifacts: finite, fixed 4-decimal
/// precision (stable across runs and locales, and valid JSON — no
/// `NaN`/`inf` tokens).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// Prints the standard bench header.
pub fn header(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Runs a model's **convolution layers** on every evaluated
/// architecture, returning `(arch, report)` pairs. (The paper's Fig. 11
/// and Fig. 12 are convolution-only.)
///
/// The per-architecture simulations fan out over the persistent host
/// executor (`s2ta_core::pool::Executor`); results come back in input
/// order, so the output is byte-identical to the serial loop it
/// replaces.
pub fn conv_reports(model: &ModelSpec, archs: &[ArchKind]) -> Vec<(ArchKind, ModelReport)> {
    let reports = pool::Executor::global()
        .map(archs, |&k| Accelerator::preset(k).run_model_conv_only(model, SEED));
    archs.iter().copied().zip(reports).collect()
}

/// Runs a model's full layer list on every evaluated architecture, the
/// per-arch simulations fanned out over the persistent host executor
/// (order-preserving — byte-identical to the serial loop).
pub fn full_reports(model: &ModelSpec, archs: &[ArchKind]) -> Vec<(ArchKind, ModelReport)> {
    let reports =
        pool::Executor::global().map(archs, |&k| Accelerator::preset(k).run_model(model, SEED));
    archs.iter().copied().zip(reports).collect()
}

/// Computes the [`LayerStats`] the comparator models need from a
/// layer's actual operand matrices.
pub fn layer_stats(w: &Matrix, a: &Matrix) -> LayerStats {
    let w_nnz = (w.len() - w.count_zeros()) as u64;
    let a_nnz = (a.len() - a.count_zeros()) as u64;
    // Non-zero products via the factorization sum_p nnzW(p) * nnzA(p).
    let mut products: u64 = 0;
    for p in 0..w.cols() {
        let nw = (0..w.rows()).filter(|&r| w.get(r, p) != 0).count() as u64;
        let na = a.row(p).iter().filter(|&&v| v != 0).count() as u64;
        products += nw * na;
    }
    LayerStats {
        macs: (w.rows() * w.cols() * a.cols()) as u64,
        nonzero_products: products,
        weight_elems: w.len() as u64,
        weight_nnz: w_nnz,
        act_elems: a.len() as u64,
        act_nnz: a_nnz,
        outputs: (w.rows() * a.cols()) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2ta_tensor::Matrix;

    #[test]
    fn layer_stats_counts() {
        let w = Matrix::from_vec(2, 2, vec![1, 0, 2, 3]);
        let a = Matrix::from_vec(2, 2, vec![1, 1, 0, 4]);
        let s = layer_stats(&w, &a);
        assert_eq!(s.macs, 8);
        assert_eq!(s.weight_nnz, 3);
        assert_eq!(s.act_nnz, 3);
        // products: p0: nw=2,na=2 -> 4; p1: nw=1,na=1 -> 1.
        assert_eq!(s.nonzero_products, 5);
        assert_eq!(s.outputs, 4);
    }
}
