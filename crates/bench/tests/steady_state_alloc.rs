//! Debug-build counting allocator proving the serving hot loop is
//! allocation-free in steady state.
//!
//! [`Accelerator::run_stage_events`] is documented to allocate nothing
//! once the plan cache, activation-profile cache, and the caller's
//! [`Scratch`] arena are warm: strip profiles live in flat buffers
//! behind `OnceLock`s, the SMT path regenerates activations into the
//! arena's recycled buffer, and events are summed without building
//! per-layer report vectors. This test pins that claim with a global
//! counting allocator — warm the caches with two batches, then assert
//! the third performs **zero** heap allocations on every architecture.
//!
//! The counter is thread-local, so worker threads of other tests in
//! this binary cannot perturb it, and it only exists in debug builds
//! (`cfg(debug_assertions)`): release benches keep the system
//! allocator untouched. This is the one spot outside `shims/` that
//! needs `unsafe` — the `GlobalAlloc` trait requires it — and the impl
//! only forwards to [`System`] after bumping a `Cell`.
#![cfg(debug_assertions)]

use s2ta_bench::SEED;
use s2ta_core::{Accelerator, ArchKind, Scratch, WeightResidency};
use s2ta_models::lenet5;
use s2ta_serve::{FaultSpec, FlightRecorder, Request, RetryQueue, TraceEvent, TraceEventKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the only addition is a
// thread-local counter bump, and `try_with` keeps alloc calls during
// TLS teardown from panicking.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_here() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn counter_actually_counts() {
    let before = allocs_here();
    std::hint::black_box(vec![0u8; 4096]);
    assert!(allocs_here() > before, "counting allocator is not installed");
}

#[test]
fn steady_state_batch_allocates_nothing_on_every_arch() {
    let model = lenet5();
    for kind in ArchKind::ALL {
        let acc = Accelerator::preset(kind);
        let plan = acc.plan_model(&model, SEED);
        let mut scratch = Scratch::new();
        let full = 0..model.layers.len();

        // Warmup: first batch compiles profiles and grows the arena;
        // second proves the buffers settled before we start counting.
        let warm = acc.run_stage_events(
            &plan,
            &model,
            full.clone(),
            SEED,
            WeightResidency::Resident,
            &mut scratch,
        );
        acc.run_stage_events(
            &plan,
            &model,
            full.clone(),
            SEED,
            WeightResidency::Resident,
            &mut scratch,
        );

        let before = allocs_here();
        let events = acc.run_stage_events(
            &plan,
            &model,
            full.clone(),
            SEED,
            WeightResidency::Resident,
            &mut scratch,
        );
        let grew = allocs_here() - before;
        assert_eq!(events, warm, "{kind:?}: steady-state events drifted from warmup");
        assert_eq!(grew, 0, "{kind:?}: steady-state batch performed {grew} heap allocations");
    }
}

/// The flight recorder's half of the same claim: the event ring is
/// fully preallocated at construction, so recording — including
/// drop-oldest overwrites far past capacity — performs **zero** heap
/// allocations. This is what lets the engine record on its hot event
/// handlers without perturbing the allocation-free serving loop.
#[test]
fn flight_recorder_records_without_allocating() {
    let mut recorder = FlightRecorder::new(64);
    let event = TraceEvent {
        cycle: 0,
        kind: TraceEventKind::BatchSealed,
        shard: 0,
        lane: 1,
        model: 2,
        stage: 0,
        a: 7,
        b: 4,
    };

    let before = allocs_here();
    // Fill the ring, then overflow it 15 times over: every overwrite
    // must happen in place.
    for cycle in 0..1024u64 {
        recorder.record(TraceEvent { cycle, ..event });
    }
    let grew = allocs_here() - before;
    assert_eq!(grew, 0, "recording performed {grew} heap allocations");
    assert_eq!(recorder.len(), 64, "ring must cap at capacity");
    assert_eq!(recorder.overwritten(), 1024 - 64, "every overflow counted");
    let oldest = recorder.iter().next().expect("ring is full");
    assert_eq!(oldest.cycle, 1024 - 64, "drop-oldest: the survivors are the newest events");
}

/// The fault-injection bookkeeping's half of the same claim: once the
/// retry queue's slab/free-list/wheel have grown to their high-water
/// mark and the fault plan is expanded, steady-state fault handling —
/// scheduling and draining retries, probing lane health and slowdown
/// factors, probing shard outage windows — performs **zero** heap
/// allocations per event. This is what lets the engine react to
/// crashes on its hot handlers without perturbing the allocation-free
/// serving loop.
#[test]
fn fault_bookkeeping_steady_state_allocates_nothing() {
    let spec = FaultSpec {
        seed: 9,
        lane_crashes: 4,
        lane_slowdowns: 3,
        shard_outages: 1,
        horizon_cycles: 1_000_000,
        mean_down_cycles: 50_000,
        mean_outage_cycles: 0,
        slowdown_factor: 3,
    };
    // Plan expansion allocates (it is run setup, not an event).
    let plan = spec.schedule(&[2, 2]);
    let timeline = plan.shard_timeline(0);
    let mut retries = RetryQueue::new();
    let req = |id: u64| Request { id, model: 0, arrival: id * 10, act_seed: id };

    // Warm: two full schedule/drain rounds grow the slab, the free
    // list, and the wheel's due-heap to their steady-state capacity.
    for round in 0..2u32 {
        for i in 0..32u64 {
            retries.schedule(i, req(i), round + 1);
        }
        while retries.pop().is_some() {}
    }

    let before = allocs_here();
    for round in 2..6u32 {
        for i in 0..32u64 {
            retries.schedule(i, req(i), round + 1);
        }
        while let Some((t, r, attempts)) = retries.pop() {
            std::hint::black_box((t, r.id, attempts));
            // The health probes the engine makes per fault-mode event.
            std::hint::black_box(timeline.is_lane_down(0, t));
            std::hint::black_box(timeline.next_up_time(0, t));
            std::hint::black_box(timeline.slow_factor_at(1, t));
            std::hint::black_box(plan.is_shard_up(1, t));
            std::hint::black_box(plan.any_shard_down(t));
        }
        assert!(retries.is_empty());
    }
    let grew = allocs_here() - before;
    assert_eq!(grew, 0, "steady-state fault bookkeeping performed {grew} heap allocations");
}
