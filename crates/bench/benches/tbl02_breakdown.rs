//! Table 2: area and power breakdown of the S2TA-AW design point
//! (8x4x4_8x8 TPEs, 16nm, 4 TOPS peak dense).
//!
//! Paper: 541 mW / 3.77 mm2 total; datapath+buffers 58.7% of power and
//! 19.1% of area; the SRAMs dominate the floorplan (71.6%).

use s2ta_bench::header;
use s2ta_core::buffers::hw_spec;
use s2ta_core::microbench::run_point;
use s2ta_core::{ArchConfig, ArchKind};
use s2ta_energy::area::{AreaBreakdown, AreaParams};
use s2ta_energy::{EnergyBreakdown, TechParams};

fn main() {
    header("Tbl. 2", "S2TA-AW (8x4x4_8x8) area and power breakdown, 16nm");
    let cfg = ArchConfig::preset(ArchKind::S2taAw);
    let area = AreaBreakdown::of(&hw_spec(&cfg), &AreaParams::tsmc16());
    // Power on the paper's Table 2 operating point: 4/8 weights, 50%
    // activation sparsity.
    let p = run_point(ArchKind::S2taAw, 0.5, 0.5, s2ta_bench::SEED);
    let e = EnergyBreakdown::of(&p.report.events, &TechParams::tsmc16());
    let s = e.shares();
    let total_mw = e.avg_power_mw();

    println!("{:<28} {:>14} {:>12}", "component", "power (share)", "area mm2");
    println!(
        "{:<28} {:>6.1} mW ({:>4.1}%) {:>9.2}",
        "MAC datapath and buffers",
        total_mw * (s[0] + s[1]),
        (s[0] + s[1]) * 100.0,
        area.datapath_mm2
    );
    println!(
        "{:<28} {:>6.1} mW ({:>4.1}%) {:>9.2}",
        "Weight SRAM (512KB)",
        total_mw * s[2],
        s[2] * 100.0,
        area.weight_sram_mm2
    );
    println!(
        "{:<28} {:>6.1} mW ({:>4.1}%) {:>9.2}",
        "Activation SRAM (2MB)",
        total_mw * s[3],
        s[3] * 100.0,
        area.act_sram_mm2
    );
    println!(
        "{:<28} {:>6.1} mW ({:>4.1}%) {:>9.2}",
        "Cortex-M33 MCU x4",
        total_mw * s[5],
        s[5] * 100.0,
        area.mcu_mm2
    );
    println!(
        "{:<28} {:>6.1} mW ({:>4.1}%) {:>9.2}",
        "DAP array",
        total_mw * s[4],
        s[4] * 100.0,
        area.dap_mm2
    );
    println!("{:<28} {:>6.0} mW          {:>9.2}", "Total", total_mw, area.total_mm2());
    println!();
    println!("paper: 541 mW total; datapath+buffers 317.7 mW (58.7%) / 0.72 mm2;");
    println!("       WB 69.4 mW / 0.54 mm2; AB 93.4 mW / 2.16 mm2; MCU 50.4 mW / 0.30 mm2;");
    println!("       DAP 10.4 mW / 0.05 mm2; total 3.77 mm2");
    assert!((area.total_mm2() - 3.77).abs() / 3.77 < 0.15, "total area off");
    assert!(s[0] + s[1] > 0.4, "datapath+buffers should be the largest power slice");
    assert!(
        (area.act_sram_mm2 + area.weight_sram_mm2) / area.total_mm2() > 0.6,
        "SRAM dominates the floorplan"
    );
    println!("shape check PASSED");
}
