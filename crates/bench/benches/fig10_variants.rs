//! Figure 10: energy breakdown and speedup of all SA variants on a
//! typical convolution with 50% (4/8 DBB) weight and 62.5% (3/8 DBB)
//! activation sparsity, normalized to SA-ZVCG.
//!
//! Paper: SMT variants are 1.7-1.9x faster but burn ~43% more energy;
//! S2TA-W reaches 2.0x; S2TA-AW reaches 2.7x with the lowest energy,
//! driven by a ~3x SRAM-energy reduction.

use s2ta_bench::header;
use s2ta_core::microbench::run_point;
use s2ta_core::ArchKind;
use s2ta_energy::{EnergyBreakdown, TechParams};

fn main() {
    header("Fig. 10", "SA variants on typical conv, 50% W (4/8) + 62.5% A (3/8), vs SA-ZVCG");
    let tech = TechParams::tsmc16();
    let archs = [
        ArchKind::Sa,
        ArchKind::SaZvcg,
        ArchKind::SaSmtT2Q2,
        ArchKind::SaSmtT2Q4,
        ArchKind::S2taW,
        ArchKind::S2taAw,
    ];
    let runs: Vec<_> =
        archs.iter().map(|&k| (k, run_point(k, 0.5, 0.625, s2ta_bench::SEED))).collect();
    let zvcg = runs.iter().find(|(k, _)| *k == ArchKind::SaZvcg).expect("zvcg");
    let base_e = EnergyBreakdown::of(&zvcg.1.report.events, &tech);
    let base_cycles = zvcg.1.report.events.cycles as f64;

    println!(
        "{:<14} {:>7} {:>8} | {:>6} {:>8} {:>6} {:>5} {:>6}",
        "arch", "energy", "speedup", "dpath", "buffers", "SRAM", "DAP", "actfn"
    );
    let mut table = Vec::new();
    for (k, p) in &runs {
        let e = EnergyBreakdown::of(&p.report.events, &tech);
        let rel = e.total_pj() / base_e.total_pj();
        let speedup = base_cycles / p.report.events.cycles as f64;
        let s = e.shares();
        println!(
            "{:<14} {:>6.2}x {:>7.2}x | {:>5.1}% {:>7.1}% {:>5.1}% {:>4.1}% {:>5.1}%",
            k.to_string(),
            rel,
            speedup,
            s[0] * 100.0,
            s[1] * 100.0,
            (s[2] + s[3]) * 100.0,
            s[4] * 100.0,
            s[5] * 100.0
        );
        table.push((*k, rel, speedup, e));
    }
    println!();
    println!("paper: SA 1.0/1.0; SMT-T2Q2 1.43/1.7; SMT-T2Q4 1.41/1.9; S2TA-W ~0.9/2.0; S2TA-AW ~0.45/2.7");

    let get = |k: ArchKind| table.iter().find(|(kk, ..)| *kk == k).expect("present");
    let (_, smt_rel, smt_speed, _) = get(ArchKind::SaSmtT2Q2);
    assert!(*smt_rel > 1.2 && *smt_speed > 1.4, "SMT: fast but energy-hungry");
    let (_, w_rel, w_speed, _) = get(ArchKind::S2taW);
    assert!(*w_rel < 1.0 && (*w_speed - 2.0).abs() < 0.2, "S2TA-W: ~2x, below ZVCG energy");
    let (_, aw_rel, aw_speed, aw_e) = get(ArchKind::S2taAw);
    assert!(*aw_rel < 0.6 && (*aw_speed - 2.67).abs() < 0.3, "S2TA-AW: ~2.7x, lowest energy");
    // The S2TA-AW SRAM reduction vs S2TA-W (paper: 3.1x).
    let (_, _, _, w_e) = get(ArchKind::S2taW);
    let sram_reduction = w_e.act_sram_pj / aw_e.act_sram_pj;
    println!(
        "S2TA-AW activation-SRAM energy reduction vs S2TA-W: {sram_reduction:.1}x (paper ~3.1x)"
    );
    assert!(sram_reduction > 1.5, "A-DBB must cut SRAM energy substantially");
    println!("shape check PASSED");
}
