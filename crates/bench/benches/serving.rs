//! Serving comparison: the same request traffic served by fleets of
//! each evaluated architecture, across client modes and batch policies.
//!
//! Extends the paper's single-inference evaluation to the serving
//! setting: throughput, tail latency, utilization and energy per
//! inference of an N-accelerator fleet under identical traffic. The
//! structured-sparse datapaths win twice — each inference takes fewer
//! cycles (paper Fig. 11), and the freed lane time absorbs more
//! traffic, compounding into tail-latency headroom. On top of the
//! architecture sweep, this bench compares open- vs closed-loop
//! clients and the fixed vs SLO-aware batch policies on the
//! lenet5 + cifar10_convnet mix.

use s2ta_bench::{
    header, hetero_scenario, json_num, pipeline_scenario, write_bench_artifact, SEED,
};
use s2ta_core::ArchKind;
use s2ta_energy::TechParams;
use s2ta_models::{cifar10_convnet, lenet5};
use s2ta_serve::{
    BatchLimits, ClosedLoopSpec, FixedPolicy, Fleet, PlacementStrategy, ServeReport,
    SloAwarePolicy, WorkloadSpec,
};

/// One JSON record of a serving run: the metrics tracked across PRs.
fn json_report(label: &str, r: &ServeReport, tech: &TechParams) -> String {
    format!(
        "{{\"label\": \"{label}\", \"arch\": \"{}\", \"policy\": \"{}\", \
         \"served\": {}, \"dropped\": {}, \"batches\": {}, \"lanes\": {}, \
         \"throughput_ips\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
         \"uj_per_inference\": {}, \"mean_utilization\": {}}}",
        r.arch,
        r.policy,
        r.served_count(),
        r.dropped_count(),
        r.batches,
        r.workers.len(),
        json_num(r.throughput_ips(tech)),
        json_num(ServeReport::cycles_to_ms(tech, r.p50_cycles())),
        json_num(ServeReport::cycles_to_ms(tech, r.p95_cycles())),
        json_num(ServeReport::cycles_to_ms(tech, r.p99_cycles())),
        json_num(r.uj_per_inference(tech)),
        json_num(r.mean_utilization()),
    )
}

fn main() {
    header("Serving", "Fleet throughput/latency/energy under identical traffic");
    let tech = TechParams::tsmc16();
    let models = [lenet5(), cifar10_convnet()];
    let spec = WorkloadSpec {
        seed: SEED,
        requests: 320,
        mean_interarrival_cycles: 400.0,
        mix: vec![2.0, 1.0],
    };
    let requests = spec.generate();
    let workers = 4;
    let policy = FixedPolicy { max_batch: 8, max_wait_cycles: 50_000 };
    println!("workload: {spec}; fleet: {workers} workers, batch <= {}", policy.max_batch);
    println!();
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "arch", "inf/s", "p50 ms", "p99 ms", "uJ/inf", "util %"
    );

    let mut records: Vec<String> = Vec::new();
    let archs = [ArchKind::SaZvcg, ArchKind::SaSmtT2Q2, ArchKind::S2taW, ArchKind::S2taAw];
    let mut baseline: Option<ServeReport> = None;
    let mut last: Option<ServeReport> = None;
    for kind in archs {
        let report = Fleet::new(kind, workers).with_policy(policy).serve(&models, &requests);
        records.push(json_report(&format!("sweep/{kind}"), &report, &tech));
        println!(
            "{:<12} {:>12.0} {:>10.4} {:>10.4} {:>10.2} {:>10.1}",
            kind.to_string(),
            report.throughput_ips(&tech),
            ServeReport::cycles_to_ms(&tech, report.p50_cycles()),
            ServeReport::cycles_to_ms(&tech, report.p99_cycles()),
            report.uj_per_inference(&tech),
            report.mean_utilization() * 100.0
        );
        if kind == ArchKind::SaZvcg {
            baseline = Some(report.clone());
        }
        last = Some(report);
    }

    let (zvcg, aw) = (baseline.expect("ran"), last.expect("ran"));
    println!();
    println!(
        "S2TA-AW vs SA-ZVCG: {:.2}x serving throughput, {:.2}x lower p99, {:.2}x less energy/inf",
        aw.throughput_ips(&tech) / zvcg.throughput_ips(&tech),
        zvcg.p99_cycles() as f64 / aw.p99_cycles() as f64,
        zvcg.uj_per_inference(&tech) / aw.uj_per_inference(&tech)
    );

    // The batching scheduler's own contribution on the AW fleet.
    let unbatched = Fleet::new(ArchKind::S2taAw, workers)
        .with_policy(FixedPolicy::unbatched())
        .serve(&models, &requests);
    println!(
        "batching on S2TA-AW: {:.1}% accelerator-time saved, p99 {:.4} -> {:.4} ms",
        (1.0 - aw.total_events.cycles as f64 / unbatched.total_events.cycles as f64) * 100.0,
        ServeReport::cycles_to_ms(&tech, unbatched.p99_cycles()),
        ServeReport::cycles_to_ms(&tech, aw.p99_cycles()),
    );
    println!();

    // --- Open vs closed loop on the S2TA-AW fleet -------------------
    // The open-loop stream keeps arriving regardless of backlog; the
    // closed-loop population (one outstanding request per client)
    // throttles itself to service capacity, trading throughput for a
    // bounded queue.
    println!("open vs closed loop (S2TA-AW, {workers} workers):");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "client mode", "inf/s", "p50 ms", "p99 ms", "util %"
    );
    let open = Fleet::new(ArchKind::S2taAw, workers).with_policy(policy).serve(&models, &requests);
    print_mode_row("open loop (320 req)", &open, &tech);
    records.push(json_report("mode/open-loop", &open, &tech));
    for clients in [4usize, 16] {
        let closed_spec = ClosedLoopSpec {
            seed: SEED,
            clients,
            requests: 320,
            mean_think_cycles: 2_000.0,
            mix: vec![2.0, 1.0],
        };
        let mut closed_policy = policy;
        let closed = Fleet::new(ArchKind::S2taAw, workers).serve_closed_loop(
            &models,
            &closed_spec,
            &mut closed_policy,
        );
        print_mode_row(&format!("closed loop ({clients} clients)"), &closed, &tech);
        records.push(json_report(&format!("mode/closed-loop-{clients}"), &closed, &tech));
    }
    println!();

    // --- Fixed vs SLO-aware policy ----------------------------------
    // Moderate load where the default fixed policy's deep batching
    // window dominates the tail: the SLO-aware policy starts tight and
    // only grows batching while the observed p99 keeps slack against
    // the target.
    let slo_spec = WorkloadSpec {
        seed: SEED,
        requests: 320,
        mean_interarrival_cycles: 6_000.0,
        mix: vec![2.0, 1.0],
    };
    let slo_requests = slo_spec.generate();
    let slo_fleet = Fleet::new(ArchKind::S2taAw, 2);
    let fixed_default =
        slo_fleet.clone().with_policy(FixedPolicy::default()).serve(&models, &slo_requests);
    let target_p99 = 60_000u64;
    let mut slo =
        SloAwarePolicy::new(target_p99, BatchLimits { max_batch: 8, max_wait_cycles: 100_000 });
    let adaptive = slo_fleet.serve_adaptive(&models, &slo_requests, &mut slo);
    println!(
        "fixed vs SLO-aware (S2TA-AW, 2 workers, mean gap {:.0}, target p99 {:.3} ms):",
        slo_spec.mean_interarrival_cycles,
        ServeReport::cycles_to_ms(&tech, target_p99),
    );
    println!("{:<26} {:>10} {:>10} {:>10} {:>10}", "policy", "inf/s", "p50 ms", "p99 ms", "batch");
    for (name, r) in [("fixed (default)", &fixed_default), ("slo-aware", &adaptive)] {
        println!(
            "{:<26} {:>10.0} {:>10.4} {:>10.4} {:>10.2}",
            name,
            r.throughput_ips(&tech),
            ServeReport::cycles_to_ms(&tech, r.p50_cycles()),
            ServeReport::cycles_to_ms(&tech, r.p99_cycles()),
            r.mean_batch_size(),
        );
    }
    println!(
        "SLO-aware: {:.2}x lower p99 at {:.2}x throughput",
        fixed_default.p99_cycles() as f64 / adaptive.p99_cycles() as f64,
        adaptive.throughput_ips(&tech) / fixed_default.throughput_ips(&tech),
    );
    assert!(
        adaptive.p99_cycles() < fixed_default.p99_cycles()
            && adaptive.throughput_ips(&tech) >= fixed_default.throughput_ips(&tech),
        "SLO-aware policy must beat the default fixed policy's p99 at >= throughput"
    );
    records.push(json_report("policy/fixed-default", &fixed_default, &tech));
    records.push(json_report("policy/slo-aware", &adaptive, &tech));
    println!();

    // --- Heterogeneous fleet: earliest-free vs affinity placement ----
    // A mixed 2xS2TA-AW + 2xSA-ZVCG fleet under one stream: arch-blind
    // earliest-free dispatch wastes tail latency (and energy) on the
    // slow dense lanes; the affinity cost model learns per-(arch,
    // model) service estimates from its own completions and routes
    // batches to the lane that finishes them soonest.
    let hetero_spec = hetero_scenario::fleet_spec();
    let hetero_models = hetero_scenario::models();
    let hetero_requests = hetero_scenario::workload().generate();
    let mk =
        || Fleet::from_spec(hetero_scenario::fleet_spec()).with_policy(hetero_scenario::policy());
    let earliest_free = mk().serve(&hetero_models, &hetero_requests);
    let affinity =
        mk().with_placement(PlacementStrategy::Affinity).serve(&hetero_models, &hetero_requests);
    println!("heterogeneous fleet ({}): earliest-free vs affinity:", hetero_spec.label());
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "placement", "inf/s", "p50 ms", "p99 ms", "uJ/inf"
    );
    for (name, r) in [("earliest-free", &earliest_free), ("affinity", &affinity)] {
        println!(
            "{:<26} {:>10.0} {:>10.4} {:>10.4} {:>10.2}",
            name,
            r.throughput_ips(&tech),
            ServeReport::cycles_to_ms(&tech, r.p50_cycles()),
            ServeReport::cycles_to_ms(&tech, r.p99_cycles()),
            r.uj_per_inference(&tech),
        );
    }
    println!(
        "affinity: {:.2}x lower p99, {:.2}x less energy/inf on the mixed fleet",
        earliest_free.p99_cycles() as f64 / affinity.p99_cycles() as f64,
        earliest_free.uj_per_inference(&tech) / affinity.uj_per_inference(&tech),
    );
    assert!(
        affinity.p99_cycles() < earliest_free.p99_cycles()
            && affinity.uj_per_inference(&tech) < earliest_free.uj_per_inference(&tech),
        "affinity placement must beat earliest-free on p99 and energy on the mixed fleet"
    );
    records.push(json_report("hetero/earliest-free", &earliest_free, &tech));
    records.push(json_report("hetero/affinity", &affinity, &tech));
    println!();

    // --- Deep-model layer pipeline: monolithic vs pipelined ----------
    // The 14-layer Deep-ConvNet on the mixed fleet: monolithic
    // placement serializes a whole inference per lane, while the
    // SCNN-style layer pipeline partitions the model into stages sized
    // to their lanes' architectures and overlaps stage s of batch b
    // with stage s+1 of batch b-1.
    let pipe_models = pipeline_scenario::models();
    let pipe_requests = pipeline_scenario::workload().generate();
    let monolithic = pipeline_scenario::monolithic_fleet().serve(&pipe_models, &pipe_requests);
    let pipelined = pipeline_scenario::pipelined_fleet().serve(&pipe_models, &pipe_requests);
    println!(
        "deep-model pipeline ({} on {}): monolithic vs {} stages:",
        pipe_models[0].name,
        pipeline_scenario::fleet_spec().label(),
        pipeline_scenario::STAGES,
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "placement", "inf/s", "p50 ms", "p99 ms", "uJ/inf"
    );
    for (name, r) in [("monolithic (EF)", &monolithic), ("pipelined", &pipelined)] {
        println!(
            "{:<26} {:>10.0} {:>10.4} {:>10.4} {:>10.2}",
            name,
            r.throughput_ips(&tech),
            ServeReport::cycles_to_ms(&tech, r.p50_cycles()),
            ServeReport::cycles_to_ms(&tech, r.p99_cycles()),
            r.uj_per_inference(&tech),
        );
    }
    print!("{}", pipelined.pipeline_breakdown());
    let p99_win = monolithic.p99_cycles() as f64 / pipelined.p99_cycles() as f64;
    println!(
        "pipelined: {:.2}x lower p99 at {:.2}x throughput on the deep-model mixed fleet",
        p99_win,
        pipelined.throughput_ips(&tech) / monolithic.throughput_ips(&tech),
    );
    assert!(
        p99_win >= 1.1 && pipelined.makespan_cycles <= monolithic.makespan_cycles,
        "pipelined placement must beat monolithic p99 by >= 1.1x at no worse throughput"
    );
    records.push(json_report("pipeline/monolithic-ef", &monolithic, &tech));
    records.push(json_report("pipeline/pipelined", &pipelined, &tech));

    // --- Machine-readable artifact ----------------------------------
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"seed\": {SEED},\n  \"runs\": [\n    {}\n  ]\n}}\n",
        records.join(",\n    ")
    );
    let path = write_bench_artifact("BENCH_serving.json", &json);
    println!();
    println!("wrote {} ({} runs)", path.display(), records.len());
}

fn print_mode_row(name: &str, r: &ServeReport, tech: &TechParams) {
    println!(
        "{:<26} {:>10.0} {:>10.4} {:>10.4} {:>10.1}",
        name,
        r.throughput_ips(tech),
        ServeReport::cycles_to_ms(tech, r.p50_cycles()),
        ServeReport::cycles_to_ms(tech, r.p99_cycles()),
        r.mean_utilization() * 100.0,
    );
}
