//! Serving comparison: the same open-loop request stream served by
//! fleets of each evaluated architecture.
//!
//! Extends the paper's single-inference evaluation to the serving
//! setting: throughput, tail latency, utilization and energy per
//! inference of an N-accelerator fleet under identical traffic. The
//! structured-sparse datapaths win twice — each inference takes fewer
//! cycles (paper Fig. 11), and the freed lane time absorbs more
//! traffic, compounding into tail-latency headroom.

use s2ta_bench::{header, SEED};
use s2ta_core::ArchKind;
use s2ta_energy::TechParams;
use s2ta_models::{cifar10_convnet, lenet5};
use s2ta_serve::{BatchPolicy, Fleet, ServeReport, WorkloadSpec};

fn main() {
    header("Serving", "Fleet throughput/latency/energy under identical open-loop traffic");
    let tech = TechParams::tsmc16();
    let models = [lenet5(), cifar10_convnet()];
    let spec = WorkloadSpec {
        seed: SEED,
        requests: 320,
        mean_interarrival_cycles: 400.0,
        mix: vec![2.0, 1.0],
    };
    let requests = spec.generate();
    let workers = 4;
    let policy = BatchPolicy { max_batch: 8, max_wait_cycles: 50_000 };
    println!("workload: {spec}; fleet: {workers} workers, batch <= {}", policy.max_batch);
    println!();
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "arch", "inf/s", "p50 ms", "p99 ms", "uJ/inf", "util %"
    );

    let archs = [ArchKind::SaZvcg, ArchKind::SaSmtT2Q2, ArchKind::S2taW, ArchKind::S2taAw];
    let mut baseline: Option<ServeReport> = None;
    let mut last: Option<ServeReport> = None;
    for kind in archs {
        let report = Fleet::new(kind, workers).with_policy(policy).serve(&models, &requests);
        println!(
            "{:<12} {:>12.0} {:>10.4} {:>10.4} {:>10.2} {:>10.1}",
            kind.to_string(),
            report.throughput_ips(&tech),
            ServeReport::cycles_to_ms(&tech, report.p50_cycles()),
            ServeReport::cycles_to_ms(&tech, report.p99_cycles()),
            report.uj_per_inference(&tech),
            report.mean_utilization() * 100.0
        );
        if kind == ArchKind::SaZvcg {
            baseline = Some(report.clone());
        }
        last = Some(report);
    }

    let (zvcg, aw) = (baseline.expect("ran"), last.expect("ran"));
    println!();
    println!(
        "S2TA-AW vs SA-ZVCG: {:.2}x serving throughput, {:.2}x lower p99, {:.2}x less energy/inf",
        aw.throughput_ips(&tech) / zvcg.throughput_ips(&tech),
        zvcg.p99_cycles() as f64 / aw.p99_cycles() as f64,
        zvcg.uj_per_inference(&tech) / aw.uj_per_inference(&tech)
    );

    // The batching scheduler's own contribution on the AW fleet.
    let unbatched = Fleet::new(ArchKind::S2taAw, workers)
        .with_policy(BatchPolicy::unbatched())
        .serve(&models, &requests);
    println!(
        "batching on S2TA-AW: {:.1}% accelerator-time saved, p99 {:.4} -> {:.4} ms",
        (1.0 - aw.total_events.cycles as f64 / unbatched.total_events.cycles as f64) * 100.0,
        ServeReport::cycles_to_ms(&tech, unbatched.p99_cycles()),
        ServeReport::cycles_to_ms(&tech, aw.p99_cycles()),
    );
}
