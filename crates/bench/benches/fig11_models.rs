//! Figure 11: full-model energy reduction and speedup vs SA-ZVCG on
//! ResNet50V1, VGG16, MobileNetV1 and AlexNet (convolution layers, as
//! in the paper's figure).
//!
//! Paper averages: S2TA-AW is 2.08x more energy-efficient and 2.11x
//! faster than SA-ZVCG; 1.84x / 1.26x vs S2TA-W; 2.24x / 1.43x vs
//! SA-SMT.

use s2ta_bench::{conv_reports, header};
use s2ta_core::ArchKind;
use s2ta_energy::TechParams;
use s2ta_models::{alexnet, mobilenet_v1, resnet50_v1, vgg16};

fn main() {
    header("Fig. 11", "Full-model (conv) energy reduction + speedup vs SA-ZVCG, 16nm");
    let tech = TechParams::tsmc16();
    let archs =
        [ArchKind::SaZvcg, ArchKind::Sa, ArchKind::SaSmtT2Q2, ArchKind::S2taW, ArchKind::S2taAw];
    let models = [resnet50_v1(), vgg16(), mobilenet_v1(), alexnet()];

    let mut aw_energy = Vec::new();
    let mut aw_speed = Vec::new();
    let mut w_energy = Vec::new();
    let mut smt_speed = Vec::new();

    // Per-model report sets fan out over the persistent executor (each
    // model in turn fans its architectures out too); order-preserving,
    // so the printed tables are byte-identical to the serial loops.
    let all_reports = s2ta_core::pool::Executor::global().map(&models, |m| conv_reports(m, &archs));

    for (model, reports) in models.iter().zip(&all_reports) {
        println!("\n--- {} ---", model.name);
        let base = &reports[0].1;
        println!("{:<14} {:>16} {:>9}", "arch", "energy reduction", "speedup");
        for (k, r) in reports {
            let red = r.energy_reduction_vs(base, &tech);
            let speed = r.speedup_vs(base);
            println!("{:<14} {:>15.2}x {:>8.2}x", k.to_string(), red, speed);
            match k {
                ArchKind::S2taAw => {
                    aw_energy.push(red);
                    aw_speed.push(speed);
                }
                ArchKind::S2taW => w_energy.push(red),
                ArchKind::SaSmtT2Q2 => smt_speed.push(speed),
                _ => {}
            }
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "S2TA-AW averages: {:.2}x energy reduction, {:.2}x speedup (paper: 2.08x, 2.11x)",
        avg(&aw_energy),
        avg(&aw_speed)
    );
    println!("S2TA-AW vs S2TA-W energy: {:.2}x (paper: 1.84x)", avg(&aw_energy) / avg(&w_energy));
    assert!(avg(&aw_energy) > 1.5, "S2TA-AW must be well above ZVCG efficiency");
    assert!(avg(&aw_speed) > 1.6, "S2TA-AW must be well above ZVCG speed");
    assert!(avg(&aw_energy) > avg(&w_energy), "joint sparsity beats weight-only");
    assert!(aw_energy.iter().all(|&e| e > 1.2), "AW wins on every model");
    println!("shape check PASSED");
}
