//! Cluster-scale routing: global tail latency of a 4-shard
//! heterogeneous cluster under a diurnal ~1M-request stream, comparing
//! the routing tier's policies — random spray, join-shortest-queue,
//! and power-of-two-choices — plus an (ungated) autoscaled run that
//! exercises lane scaling against the same day curve.
//!
//! Queues are unbounded, so every policy serves the identical request
//! set (zero drops, equal goodput) and the global-p99 gap is
//! attributable to routing alone. Two gates, both recorded in
//! `BENCH_cluster.json`: **p2c >= 1.15x random on global p99** (merged
//! per-request samples, never averaged per-shard percentiles), and the
//! **shard-parallel driver >= 2x the serial driver on host wall-time**
//! at 4 shards — after a byte-identity check of the two full reports.
//! The wall-time gate is host-aware: with a single executor worker
//! (1-core host) real speedup is physically unavailable, so the gate
//! drops to a no-regression floor and the artifact records the worker
//! count alongside the measured ratio.
//!
//! Set `S2TA_BENCH_QUICK=1` for the CI smoke mode: a 40k-request
//! prefix of the same diurnal profile, conservation, ordering, and
//! parallel-vs-serial byte-identity checks only, no artifact rewrite
//! (scaled-down gaps are not the committed gates; CI's python step
//! re-checks the committed artifact).

use s2ta_bench::{
    chaos_scenario, cluster_scenario as scenario, header, json_num, write_bench_artifact, SEED,
};
use s2ta_core::pool::Executor;
use s2ta_energy::TechParams;
use s2ta_models::ModelSpec;
use s2ta_serve::{ClusterReport, FaultConfig, Request, RoutingPolicy};
use std::time::Instant;

/// Everything the artifact keeps from one cluster run — the full
/// [`ClusterReport`] (a million outcome rows) is dropped after this is
/// extracted.
struct RunSummary {
    label: String,
    served: usize,
    dropped: usize,
    p50: u64,
    p95: u64,
    p99: u64,
    makespan: u64,
    goodput_ips: f64,
    energy_uj: f64,
    scale_events: usize,
    host_seconds: f64,
}

fn summarize(label: &str, report: &ClusterReport, tech: &TechParams, secs: f64) -> RunSummary {
    RunSummary {
        label: label.to_string(),
        served: report.served_count(),
        dropped: report.dropped_count(),
        p50: report.p50_cycles(),
        p95: report.p95_cycles(),
        p99: report.p99_cycles(),
        makespan: report.makespan_cycles(),
        goodput_ips: report.goodput_ips(tech),
        energy_uj: report.energy(tech).total_pj() * 1e-6,
        scale_events: report.scale_events.len(),
        host_seconds: secs,
    }
}

fn run(
    label: &str,
    routing: RoutingPolicy,
    autoscaled: bool,
    models: &[ModelSpec],
    requests: &[Request],
    tech: &TechParams,
) -> (RunSummary, ClusterReport) {
    let mut cluster = scenario::cluster(routing);
    if autoscaled {
        cluster = cluster.with_autoscale(scenario::autoscale());
    }
    let t = Instant::now();
    let report = cluster.serve(models, requests);
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(report.total_requests(), requests.len(), "{label}: router must conserve the stream");
    let s = summarize(label, &report, tech, secs);
    println!(
        "{label:<14} served {:>9} dropped {:>3} | p50 {:>7} p95 {:>7} p99 {:>7} cyc | \
         goodput {:>9.0} inf/s | {} scale events | {secs:.1} host-s",
        s.served, s.dropped, s.p50, s.p95, s.p99, s.goodput_ips, s.scale_events,
    );
    (s, report)
}

fn record(s: &RunSummary) -> String {
    format!(
        "{{\"routing\": \"{}\", \"served\": {}, \"dropped\": {}, \"p50_cycles\": {}, \
         \"p95_cycles\": {}, \"p99_cycles\": {}, \"makespan_cycles\": {}, \
         \"goodput_ips\": {}, \"energy_uj\": {}, \"scale_events\": {}, \"host_seconds\": {}}}",
        s.label,
        s.served,
        s.dropped,
        s.p50,
        s.p95,
        s.p99,
        s.makespan,
        json_num(s.goodput_ips),
        json_num(s.energy_uj),
        s.scale_events,
        json_num(s.host_seconds),
    )
}

/// Everything the artifact keeps from one chaos run: the coarse
/// outcome split, the strict-class serving mass the goodput gate is
/// computed over, and the fault counters proving the machinery under
/// test actually fired.
struct ChaosSummary {
    label: String,
    served: usize,
    dropped: usize,
    failed: usize,
    p99: u64,
    makespan: u64,
    strict_served: usize,
    availability: f64,
    crashes: u64,
    retries: u64,
    failovers: u64,
    shed: u64,
}

/// Strict-class goodput of one chaos run relative to the bounded
/// fault-free baseline: served strict requests per simulated cycle,
/// as a ratio (the clock cancels).
fn strict_goodput_ratio(run: &ChaosSummary, base: &ChaosSummary) -> f64 {
    (run.strict_served as f64 / run.makespan as f64)
        / (base.strict_served as f64 / base.makespan as f64)
}

fn run_chaos(
    label: &str,
    config: Option<FaultConfig>,
    models: &[ModelSpec],
    requests: &[Request],
) -> (ChaosSummary, ClusterReport) {
    let mut cluster = chaos_scenario::cluster();
    if let Some(config) = config {
        cluster = cluster.with_faults(config);
    }
    let report = cluster.serve(models, requests);
    assert_eq!(report.total_requests(), requests.len(), "{label}: outcomes must conserve");
    assert_eq!(
        report.served_count() + report.dropped_count() + report.failed_count(),
        requests.len(),
        "{label}: served + dropped + failed must cover the stream"
    );
    let strict: Vec<String> =
        chaos_scenario::STRICT_MODELS.iter().map(|&i| models[i].name.to_string()).collect();
    let strict_served = report
        .shards
        .iter()
        .map(|s| s.served_outcomes().filter(|o| strict.contains(&o.model)).count())
        .sum();
    let stats = report.fault_stats();
    let s = ChaosSummary {
        label: label.to_string(),
        served: report.served_count(),
        dropped: report.dropped_count(),
        failed: report.failed_count(),
        p99: report.p99_cycles(),
        makespan: report.makespan_cycles(),
        strict_served,
        availability: report.availability(),
        crashes: stats.lane_crashes,
        retries: stats.retries,
        failovers: stats.failovers,
        shed: stats.shed,
    };
    println!(
        "{label:<14} served {:>9} dropped {:>6} failed {:>6} | p99 {:>8} cyc | strict {:>9} | \
         {:>3} crashes {:>5} retries {:>6} failovers {:>6} shed | avail {:.4}",
        s.served,
        s.dropped,
        s.failed,
        s.p99,
        s.strict_served,
        s.crashes,
        s.retries,
        s.failovers,
        s.shed,
        s.availability,
    );
    (s, report)
}

fn record_chaos(s: &ChaosSummary, base: &ChaosSummary) -> String {
    format!(
        "{{\"run\": \"{}\", \"served\": {}, \"dropped\": {}, \"failed\": {}, \
         \"p99_cycles\": {}, \"makespan_cycles\": {}, \"strict_served\": {}, \
         \"strict_goodput_ratio\": {}, \"p99_ratio\": {}, \"availability\": {}, \
         \"crashes\": {}, \"retries\": {}, \"failovers\": {}, \"shed\": {}}}",
        s.label,
        s.served,
        s.dropped,
        s.failed,
        s.p99,
        s.makespan,
        s.strict_served,
        json_num(strict_goodput_ratio(s, base)),
        json_num(s.p99 as f64 / base.p99 as f64),
        json_num(s.availability),
        s.crashes,
        s.retries,
        s.failovers,
        s.shed,
    )
}

fn main() {
    header("Cluster", "Sharded serving: routing-policy tail latency at ~1M diurnal requests");
    let quick = std::env::var("S2TA_BENCH_QUICK").is_ok();
    let tech = TechParams::tsmc16();
    let models = scenario::models();
    let mut spec = scenario::workload();
    if quick {
        spec.requests = 40_000;
    }
    let requests = spec.generate();
    println!(
        "{} shards ({} lanes each), {} requests over a {}-cycle day, act-seed pool {}\n",
        scenario::SHARDS,
        scenario::shard_spec().lanes(),
        requests.len(),
        spec.period_cycles(),
        scenario::ACT_SEED_POOL,
    );

    let (random, random_report) =
        run("random", RoutingPolicy::Random, false, &models, &requests, &tech);

    // Shard-parallel vs serial reference: the default driver runs the
    // shards on the persistent executor, and must reproduce the serial
    // driver **byte-identically** (full report equality) while beating
    // it on host wall-time at 4 shards.
    let t = Instant::now();
    let serial_report = scenario::cluster(RoutingPolicy::Random).serve_serial(&models, &requests);
    let serial_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        serial_report, random_report,
        "shard-parallel driver must reproduce the serial driver byte-identically"
    );
    drop(serial_report);
    drop(random_report);
    let workers = Executor::global().workers();
    let parallel_gate = if workers >= 2 {
        scenario::GATE_PARALLEL_SPEEDUP
    } else {
        scenario::GATE_PARALLEL_FLOOR_SINGLE_CORE
    };
    let parallel_speedup = serial_secs / random.host_seconds;
    println!(
        "{:<14} serial reference {serial_secs:.1} host-s -> parallel {:.1} host-s \
         ({parallel_speedup:.2}x, byte-identical, {workers} executor worker(s))",
        "parallel", random.host_seconds,
    );

    let (jsq, _) = run("jsq", RoutingPolicy::JoinShortestQueue, false, &models, &requests, &tech);
    let (p2c, _) = run("p2c", RoutingPolicy::PowerOfTwo, false, &models, &requests, &tech);
    let (scaled, _) =
        run("p2c+autoscale", RoutingPolicy::PowerOfTwo, true, &models, &requests, &tech);

    // Equal goodput by construction: unbounded queues, zero drops,
    // identical served sets — so the p99 gap is routing, not admission.
    for s in [&random, &jsq, &p2c] {
        assert_eq!(s.dropped, 0, "{}: canonical scenario must not drop", s.label);
        assert_eq!(s.served, requests.len(), "{}: must serve the whole stream", s.label);
    }
    let goodput_gap = (p2c.goodput_ips - random.goodput_ips).abs() / random.goodput_ips;
    assert!(
        goodput_gap < 0.02,
        "p2c and random goodput diverged by {:.2}% — the p99 gate assumes equal goodput",
        goodput_gap * 100.0
    );
    assert!(scaled.scale_events > 0, "the diurnal day must exercise the autoscaler");

    let speedup = random.p99 as f64 / p2c.p99 as f64;
    let jsq_speedup = random.p99 as f64 / jsq.p99 as f64;
    println!();
    println!("p2c global p99 is {speedup:.2}x better than random (jsq: {jsq_speedup:.2}x)");

    // --- Chaos cell: the same day under bounded admission and a
    // seeded fault schedule scaled to the measured fault-free
    // makespan. Protected (retries + failover + degraded shedding)
    // must hold strict goodput and the global tail near the bounded
    // fault-free baseline; unprotected must measurably lose both.
    println!();
    let horizon = random.makespan;
    let (chaos_base, _) = run_chaos("chaos-baseline", None, &models, &requests);
    let (protected, protected_report) =
        run_chaos("protected", Some(chaos_scenario::protected(horizon)), &models, &requests);
    let (unprotected, _) =
        run_chaos("unprotected", Some(chaos_scenario::unprotected(horizon)), &models, &requests);

    // The shard-parallel driver must reproduce the serial driver
    // byte-identically under faults too — the fault schedule, retry
    // timing and failover decisions are all simulated-clock state.
    let serial_protected = chaos_scenario::cluster()
        .with_faults(chaos_scenario::protected(horizon))
        .serve_serial(&models, &requests);
    assert_eq!(
        serial_protected, protected_report,
        "fault-mode shard-parallel driver must reproduce the serial driver byte-identically"
    );
    drop(serial_protected);
    drop(protected_report);

    for s in [&protected, &unprotected] {
        assert!(s.crashes > 0, "{}: the schedule must inject crashes", s.label);
    }
    assert!(protected.retries > 0, "protected: crash-cancelled requests must retry");
    assert!(protected.failovers > 0, "protected: outage arrivals must fail over");
    assert_eq!(unprotected.retries, 0, "unprotected: retries are disabled");
    assert_eq!(unprotected.failovers, 0, "unprotected: failover is disabled");

    let protected_goodput = strict_goodput_ratio(&protected, &chaos_base);
    let protected_p99 = protected.p99 as f64 / chaos_base.p99 as f64;
    let unprotected_goodput = strict_goodput_ratio(&unprotected, &chaos_base);
    let unprotected_p99 = unprotected.p99 as f64 / chaos_base.p99 as f64;
    println!(
        "protected:   strict goodput {protected_goodput:.4}x, p99 {protected_p99:.2}x \
         (gates: >= {:.2}x, <= {:.2}x)",
        chaos_scenario::GATE_GOODPUT_RATIO,
        chaos_scenario::GATE_P99_RATIO,
    );
    println!(
        "unprotected: strict goodput {unprotected_goodput:.4}x, p99 {unprotected_p99:.2}x \
         (must violate both)"
    );

    if quick {
        println!("quick mode: artifact left untouched");
        return;
    }
    assert!(
        protected_goodput >= chaos_scenario::GATE_GOODPUT_RATIO,
        "protected run must hold strict-class goodput >= {:.2}x the fault-free baseline, \
         got {protected_goodput:.4}x",
        chaos_scenario::GATE_GOODPUT_RATIO,
    );
    assert!(
        protected_p99 <= chaos_scenario::GATE_P99_RATIO,
        "protected run must hold global p99 <= {:.2}x the fault-free baseline, \
         got {protected_p99:.2}x",
        chaos_scenario::GATE_P99_RATIO,
    );
    assert!(
        unprotected_goodput < chaos_scenario::GATE_GOODPUT_RATIO,
        "unprotected run must measurably lose strict-class goodput (schedule too gentle): \
         got {unprotected_goodput:.4}x",
    );
    assert!(
        unprotected_p99 > chaos_scenario::GATE_P99_RATIO,
        "unprotected run must measurably lose the global tail (schedule too gentle): \
         got {unprotected_p99:.2}x",
    );
    assert!(
        speedup >= scenario::GATE_P99_SPEEDUP,
        "p2c must beat random routing on global p99 by >= {:.2}x, got {speedup:.2}x",
        scenario::GATE_P99_SPEEDUP,
    );
    assert!(
        parallel_speedup >= parallel_gate,
        "the shard-parallel driver must make >= {parallel_gate:.2}x host wall-time \
         vs the serial driver at {} shards with {workers} executor worker(s), \
         got {parallel_speedup:.2}x",
        scenario::SHARDS,
    );

    let records: Vec<String> = [&random, &jsq, &p2c, &scaled].iter().map(|s| record(s)).collect();
    let chaos_records: Vec<String> = [&chaos_base, &protected, &unprotected]
        .iter()
        .map(|s| record_chaos(s, &chaos_base))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"seed\": {SEED},\n  \"shards\": {},\n  \
         \"requests\": {},\n  \"runs\": [\n    {}\n  ],\n  \"parallel\": {{\"serial_host_seconds\": {}, \
         \"parallel_host_seconds\": {}, \"speedup\": {}, \"workers\": {workers}, \"threshold\": {}}},\n  \
         \"gate\": {{\"p99_speedup_p2c_vs_random\": {}, \"threshold\": {}}},\n  \
         \"chaos\": {{\n    \"queue_capacity\": {},\n    \"runs\": [\n      {}\n    ],\n    \
         \"gate\": {{\"goodput_ratio_min\": {}, \"p99_ratio_max\": {}}}\n  }}\n}}\n",
        scenario::SHARDS,
        requests.len(),
        records.join(",\n    "),
        json_num(serial_secs),
        json_num(random.host_seconds),
        json_num(parallel_speedup),
        json_num(parallel_gate),
        json_num(speedup),
        json_num(scenario::GATE_P99_SPEEDUP),
        chaos_scenario::QUEUE_CAPACITY,
        chaos_records.join(",\n      "),
        json_num(chaos_scenario::GATE_GOODPUT_RATIO),
        json_num(chaos_scenario::GATE_P99_RATIO),
    );
    let path = write_bench_artifact("BENCH_cluster.json", &json);
    println!("wrote {} ({} runs)", path.display(), records.len());
}
