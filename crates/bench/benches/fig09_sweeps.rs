//! Figure 9: microbenchmark sweeps — energy and speedup vs sparsity for
//! (a) SA-ZVCG, (b) SA-SMT, (c) S2TA-W, (d) S2TA-AW.
//!
//! Paper shapes: ZVCG's energy falls slowly with sparsity, no speedup;
//! SMT speeds up but costs more energy than ZVCG; S2TA-W steps to a
//! fixed 2x at >=50% weight sparsity; S2TA-AW speedup scales 1x..8x
//! with activation DBB sparsity.

use s2ta_bench::header;
use s2ta_core::microbench::run_point;
use s2ta_core::ArchKind;
use s2ta_energy::{EnergyBreakdown, TechParams};

const SPARSITIES: [f64; 6] = [0.0, 0.25, 0.50, 0.625, 0.75, 0.875];

fn main() {
    let tech = TechParams::tsmc16();
    // Normalization: SA-ZVCG at 50% weight / 50% activation sparsity.
    let norm_run = run_point(ArchKind::SaZvcg, 0.5, 0.5, s2ta_bench::SEED);
    let norm_e = EnergyBreakdown::of(&norm_run.report.events, &tech).total_pj();
    let norm_cycles = norm_run.report.events.cycles as f64;

    let panel = |id: &str, title: &str, arch: ArchKind, sweep_acts: bool, fixed: [f64; 2]| {
        header(id, title);
        println!(
            "{:<10} {:>14} {:>14} {:>9}",
            if sweep_acts { "act-spars" } else { "w-spars" },
            format!("energy@{:.0}%", fixed[0] * 100.0),
            format!("energy@{:.0}%", fixed[1] * 100.0),
            "speedup"
        );
        let mut rows = Vec::new();
        for &sp in &SPARSITIES {
            let (e1, e2, cycles) = if sweep_acts {
                let p1 = run_point(arch, fixed[0], sp, s2ta_bench::SEED);
                let p2 = run_point(arch, fixed[1], sp, s2ta_bench::SEED);
                (
                    EnergyBreakdown::of(&p1.report.events, &tech).total_pj(),
                    EnergyBreakdown::of(&p2.report.events, &tech).total_pj(),
                    p1.report.events.cycles,
                )
            } else {
                let p1 = run_point(arch, sp, fixed[0], s2ta_bench::SEED);
                let p2 = run_point(arch, sp, fixed[1], s2ta_bench::SEED);
                (
                    EnergyBreakdown::of(&p1.report.events, &tech).total_pj(),
                    EnergyBreakdown::of(&p2.report.events, &tech).total_pj(),
                    p1.report.events.cycles,
                )
            };
            let speedup = norm_cycles / cycles as f64;
            println!(
                "{:>8.1}% {:>13.2}x {:>13.2}x {:>8.2}x",
                sp * 100.0,
                e1 / norm_e,
                e2 / norm_e,
                speedup
            );
            rows.push((sp, e1 / norm_e, speedup));
        }
        rows
    };

    let zvcg = panel(
        "Fig. 9a",
        "SA-ZVCG: energy scales weakly, no speedup",
        ArchKind::SaZvcg,
        false,
        [0.5, 0.8],
    );
    let smt = panel(
        "Fig. 9b",
        "SA-SMT (T2Q2): speedup but higher energy than ZVCG",
        ArchKind::SaSmtT2Q2,
        false,
        [0.5, 0.8],
    );
    let w = panel(
        "Fig. 9c",
        "S2TA-W: fixed 2x speedup step at >=50% W-DBB sparsity",
        ArchKind::S2taW,
        false,
        [0.5, 0.8],
    );
    let aw = panel(
        "Fig. 9d",
        "S2TA-AW: speedup scales with activation DBB sparsity (x-axis = act sparsity)",
        ArchKind::S2taAw,
        true,
        [0.5, 0.8],
    );

    println!();
    // Shape assertions.
    // 9a: no speedup anywhere, energy monotonically non-increasing.
    assert!(zvcg.iter().all(|&(_, _, s)| (s - zvcg[0].2).abs() / zvcg[0].2 < 0.02));
    assert!(zvcg.last().expect("rows").1 < zvcg[0].1);
    // 9b: SMT energy above ZVCG's at every point.
    for (z, m) in zvcg.iter().zip(&smt) {
        assert!(m.1 > z.1, "SMT energy must exceed ZVCG at {}%", z.0 * 100.0);
    }
    // 9c: 2x step at 50%, flat after.
    let w50 = w.iter().find(|r| r.0 == 0.50).expect("50% row");
    let w875 = w.iter().find(|r| r.0 == 0.875).expect("87.5% row");
    assert!((w50.2 / w[0].2 - 2.0).abs() < 0.15, "W-DBB step should be ~2x");
    assert!((w875.2 - w50.2).abs() / w50.2 < 0.05, "no speedup beyond the step");
    // 9d: speedups ~ 1, 1.3, 2, 2.7, 4, 8 relative to the dense point.
    let base = aw[0].2;
    for (row, expect) in aw.iter().zip([1.0, 8.0 / 6.0, 2.0, 8.0 / 3.0, 4.0, 8.0]) {
        let got = row.2 / base;
        assert!(
            (got - expect).abs() / expect < 0.12,
            "AW speedup at {:.1}%: {got:.2} vs {expect:.2}",
            row.0 * 100.0
        );
    }
    println!("shape checks PASSED for panels a-d");
    println!("paper speedup series (9d): 1.0, 1.3, 2.0, 2.7, 4.0, 8.0");
}
