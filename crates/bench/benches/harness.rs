//! Harness throughput: **simulated inferences per host-second** of the
//! serving loop, comparing the profile-compiled execution path
//! (`ExecPath::Profiled`, the default) against the
//! operand-materializing reference path (`ExecPath::Reference`) on the
//! two canonical serving scenarios (hetero + pipeline).
//!
//! This measures *host* speed, not simulated speed: both paths produce
//! byte-identical `ServeReport`s (asserted here and golden-tested in
//! `tests/profile_path.rs`); the profile-compiled path just reaches
//! them without regenerating, DAP-pruning or re-profiling any dense
//! activation matrix in the hot loop — and, since the allocation-free
//! refactor, without allocating, regenerating dense-lane weights, or
//! spawning threads per burst either. The gate is **>= 10x** on both
//! scenarios (recorded in `BENCH_harness.json`).
//!
//! Set `S2TA_BENCH_QUICK=1` for the CI smoke mode: one timed repetition
//! per cell and no artifact rewrite (the committed artifact keeps the
//! full run's numbers). Quick mode gates only the reports' byte
//! identity — a one-shot wall-clock ratio on a shared runner is not a
//! reliable CI signal; the >= 10x speedup gate applies to full runs and
//! to the committed artifact (re-checked by CI's python step).

use s2ta_bench::{
    header, hetero_scenario, json_num, pipeline_scenario, write_bench_artifact, SEED,
};
use s2ta_core::ExecPath;
use s2ta_models::ModelSpec;
use s2ta_serve::{Fleet, Request, ServeReport};
use std::time::Instant;

/// One measured cell: a fleet serving the scenario's traffic `reps`
/// times after one untimed warm-up pass (steady-state caches), so the
/// number is the serving loop's throughput, not compile time.
fn measure(
    fleet: &Fleet,
    models: &[ModelSpec],
    requests: &[Request],
    reps: usize,
) -> (f64, f64, ServeReport) {
    let warm = fleet.serve(models, requests);
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(fleet.serve(models, requests));
    }
    let secs = t.elapsed().as_secs_f64();
    let ips = (warm.served_count() * reps) as f64 / secs;
    (ips, secs, warm)
}

struct ScenarioResult {
    name: &'static str,
    speedup: f64,
    records: Vec<String>,
}

fn run_scenario(
    name: &'static str,
    mk: impl Fn(ExecPath) -> Fleet,
    models: &[ModelSpec],
    requests: &[Request],
    reps: usize,
) -> ScenarioResult {
    let mut records = Vec::new();
    let mut ips_of = [0.0f64; 2];
    let mut reports: Vec<ServeReport> = Vec::new();
    for (i, (path, label)) in
        [(ExecPath::Reference, "reference"), (ExecPath::Profiled, "profiled")].iter().enumerate()
    {
        let fleet = mk(*path);
        let (ips, secs, report) = measure(&fleet, models, requests, reps);
        ips_of[i] = ips;
        println!(
            "{name:<10} {label:<10} {ips:>14.0} simulated inf/host-s  ({reps} reps, {secs:.3} s)",
        );
        records.push(format!(
            "{{\"scenario\": \"{name}\", \"path\": \"{label}\", \"served\": {}, \
             \"reps\": {reps}, \"host_seconds\": {}, \"inferences_per_host_second\": {}}}",
            report.served_count(),
            json_num(secs),
            json_num(ips),
        ));
        reports.push(report);
    }
    // Host path must never leak into simulated results (plan-cache
    // traffic is excluded from report equality by design).
    assert_eq!(reports[0], reports[1], "{name}: exec path changed simulated results");
    ScenarioResult { name, speedup: ips_of[1] / ips_of[0], records }
}

fn main() {
    header("Harness", "Serving-loop host throughput: profile-compiled vs reference path");
    let quick = std::env::var("S2TA_BENCH_QUICK").is_ok();
    let reps = if quick { 1 } else { 5 };

    let hetero_models = hetero_scenario::models();
    let hetero_requests = hetero_scenario::workload().generate();
    let hetero = run_scenario(
        "hetero",
        |path| {
            Fleet::from_spec(hetero_scenario::fleet_spec().with_exec_path(path))
                .with_policy(hetero_scenario::policy())
        },
        &hetero_models,
        &hetero_requests,
        reps,
    );

    let pipe_models = pipeline_scenario::models();
    let pipe_requests = pipeline_scenario::workload().generate();
    let pipeline = run_scenario(
        "pipeline",
        |path| {
            Fleet::from_spec(pipeline_scenario::fleet_spec().with_exec_path(path))
                .with_policy(pipeline_scenario::policy())
                .with_pipeline(pipeline_scenario::STAGES)
        },
        &pipe_models,
        &pipe_requests,
        reps,
    );

    println!();
    let mut records = Vec::new();
    for s in [&hetero, &pipeline] {
        println!(
            "{}: profile-compiled path {:.2}x the reference host throughput",
            s.name, s.speedup
        );
        records.extend(s.records.iter().cloned());
        // Quick mode (single rep on a possibly noisy CI runner) gates
        // only the byte-identity of the reports, already asserted in
        // run_scenario — a one-shot wall-clock ratio is not a reliable
        // CI signal. The committed full-mode artifact carries the
        // gated speedups, and CI's artifact check re-asserts >= 10x.
        if !quick {
            assert!(
                s.speedup >= 10.0,
                "{}: profile-compiled serving must be >= 10x the reference path, got {:.2}x",
                s.name,
                s.speedup
            );
        }
    }

    if quick {
        println!("quick mode: artifact left untouched");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"harness\",\n  \"seed\": {SEED},\n  \"runs\": [\n    {}\n  ],\n  \
         \"speedup\": {{\"hetero\": {}, \"pipeline\": {}}}\n}}\n",
        records.join(",\n    "),
        json_num(hetero.speedup),
        json_num(pipeline.speedup),
    );
    let path = write_bench_artifact("BENCH_harness.json", &json);
    println!("wrote {} ({} runs)", path.display(), records.len());
}
