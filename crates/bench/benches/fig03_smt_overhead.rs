//! Figure 3: effective energy/area and speedup of INT8 systolic array
//! variants (SA, SA-ZVCG, SMT-T2Q2, SMT-T2Q4) on a typical conv with
//! 50% weight and activation sparsity.
//!
//! Paper: the SMT variants achieve 1.6x / 1.8x speedup, but the staging
//! FIFOs leave them with ~50% *higher* energy than SA-ZVCG.

use s2ta_bench::header;
use s2ta_core::buffers::hw_spec;
use s2ta_core::microbench::run_point;
use s2ta_core::{ArchConfig, ArchKind};
use s2ta_energy::area::{AreaBreakdown, AreaParams};
use s2ta_energy::{EnergyBreakdown, TechParams};

fn main() {
    header("Fig. 3", "Effective energy/area + speedup of SA variants (16nm, 50/50 sparsity)");
    let tech = TechParams::tsmc16();
    let archs = [ArchKind::Sa, ArchKind::SaZvcg, ArchKind::SaSmtT2Q2, ArchKind::SaSmtT2Q4];
    let runs: Vec<_> =
        archs.iter().map(|&k| (k, run_point(k, 0.5, 0.5, s2ta_bench::SEED))).collect();
    let base = EnergyBreakdown::of(&runs[1].1.report.events, &tech); // SA-ZVCG
    let base_cycles = runs[1].1.report.events.cycles as f64;

    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "arch", "energy", "speedup", "mac+mux", "buffers", "area mm2"
    );
    let mut results = Vec::new();
    for (k, p) in &runs {
        let e = EnergyBreakdown::of(&p.report.events, &tech);
        let rel = e.total_pj() / base.total_pj();
        let speedup = base_cycles / p.report.events.cycles as f64;
        let area = AreaBreakdown::of(&hw_spec(&ArchConfig::preset(*k)), &AreaParams::tsmc16());
        println!(
            "{:<14} {:>7.2}x {:>7.2}x {:>8.1}% {:>8.1}% {:>8.2}",
            k.to_string(),
            rel,
            speedup,
            e.shares()[0] * 100.0,
            e.shares()[1] * 100.0,
            area.total_mm2()
        );
        results.push((*k, rel, speedup));
    }
    println!();
    println!("paper: SMT-T2Q2 ~1.5x energy / 1.6x speedup; SMT-T2Q4 ~1.5x / 1.8x (vs SA-ZVCG)");
    let t2q2 = results.iter().find(|(k, ..)| *k == ArchKind::SaSmtT2Q2).expect("t2q2");
    let t2q4 = results.iter().find(|(k, ..)| *k == ArchKind::SaSmtT2Q4).expect("t2q4");
    assert!(t2q2.1 > 1.2, "SMT must cost MORE energy than ZVCG despite speedup");
    assert!(t2q2.2 > 1.3 && t2q4.2 > t2q2.2, "T2Q4 must be faster than T2Q2");
    println!("shape check PASSED: SMT faster but less energy-efficient than SA-ZVCG");
}
