//! Figure 12: AlexNet per-layer energy for Eyeriss-v2 (65nm), SparTen
//! (45nm), SA-ZVCG, S2TA-W and S2TA-AW (65nm).
//!
//! Paper shape: S2TA-AW's total is ~2.2x below SparTen and ~3.1x below
//! Eyeriss-v2; SparTen looks good only on the very sparse layers
//! (conv3-5) and poor on the denser conv1-2.

use s2ta_bench::{header, layer_stats};
use s2ta_core::{Accelerator, ArchKind};
use s2ta_energy::comparators::ComparatorModel;
use s2ta_energy::{EnergyBreakdown, TechParams};
use s2ta_models::alexnet;

fn main() {
    header("Fig. 12", "AlexNet per-layer energy per inference (uJ), 65nm");
    let tech = TechParams::tsmc65();
    let model = alexnet();
    let conv: Vec<_> = model.layers.iter().take(5).cloned().collect();

    let sparten = ComparatorModel::sparten45();
    let eyeriss = ComparatorModel::eyeriss_v2_65();
    let archs = [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw];

    println!(
        "{:<7} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "layer", "EyerissV2", "SparTen", "SA-ZVCG", "S2TA-W", "S2TA-AW"
    );
    let mut totals = [0.0f64; 5];
    let mut sparten_layers = Vec::new();
    let mut zvcg_layers = Vec::new();
    for (li, layer) in conv.iter().enumerate() {
        let w = layer.gen_weights(s2ta_bench::SEED);
        let a = layer.gen_acts(s2ta_bench::SEED);
        let stats = layer_stats(&w, &a);
        let ey = eyeriss.layer_energy_pj(&stats) * 1e-6;
        let sp = sparten.layer_energy_pj(&stats) * 1e-6;
        let mut ours = Vec::new();
        for (ai, &k) in archs.iter().enumerate() {
            let r = Accelerator::preset(k).run_layer(layer, li, s2ta_bench::SEED);
            let e = EnergyBreakdown::of(&r.events, &tech).total_uj();
            ours.push(e);
            totals[2 + ai] += e;
        }
        totals[0] += ey;
        totals[1] += sp;
        sparten_layers.push(sp);
        zvcg_layers.push(ours[0]);
        println!(
            "{:<7} {:>11.0} {:>11.0} {:>9.0} {:>9.0} {:>9.0}",
            layer.name, ey, sp, ours[0], ours[1], ours[2]
        );
    }
    println!(
        "{:<7} {:>11.0} {:>11.0} {:>9.0} {:>9.0} {:>9.0}",
        "Total", totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    println!();
    let aw = totals[4];
    println!("SparTen / S2TA-AW   = {:.1}x (paper ~2.2x)", totals[1] / aw);
    println!("EyerissV2 / S2TA-AW = {:.1}x (paper ~3.1x)", totals[0] / aw);
    assert!(totals[1] / aw > 1.5, "S2TA-AW must clearly beat SparTen overall");
    assert!(totals[0] / aw > 2.0, "S2TA-AW must clearly beat Eyeriss-v2 overall");
    assert!(totals[0] > totals[1], "Eyeriss-v2 costs more than SparTen on AlexNet");
    // SparTen's signature: competitive with SA-ZVCG only on the sparse
    // late layers, far worse on the dense conv1.
    let early_ratio = sparten_layers[0] / zvcg_layers[0];
    let late_ratio = sparten_layers[4] / zvcg_layers[4];
    println!("SparTen/SA-ZVCG on conv1: {early_ratio:.2}x, on conv5: {late_ratio:.2}x");
    assert!(early_ratio > late_ratio, "SparTen must look relatively better on sparse layers");
    println!("shape check PASSED");
}
