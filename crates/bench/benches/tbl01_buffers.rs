//! Table 1: PE buffer sizes per INT8 MAC across architectures.
//!
//! Paper: SCNN 1.65 KB, SparTen ~1 KB, Eyeriss v2 205 B, SA-SMT 20 B,
//! systolic array 6 B, S2TA-W 0.875 B, S2TA-AW 4.75 B.

use s2ta_bench::header;
use s2ta_core::buffers::{BufferPerMac, PUBLISHED_BUFFERS};
use s2ta_core::{ArchConfig, ArchKind};

fn main() {
    header("Tbl. 1", "PE buffer bytes per INT8 MAC");
    println!("{:<16} {:>10} {:>13} {:>9}", "architecture", "operands", "accumulators", "total");
    for (name, op, acc) in PUBLISHED_BUFFERS {
        println!("{name:<16} {op:>9.1}B {acc:>12.1}B {:>8.1}B  (published)", op + acc);
    }
    let ours = [
        (ArchKind::SaSmtT2Q2, "SA-SMT (T2Q2)"),
        (ArchKind::Sa, "Systolic Array"),
        (ArchKind::S2taW, "S2TA-W"),
        (ArchKind::S2taAw, "S2TA-AW"),
    ];
    let mut totals = Vec::new();
    for (kind, label) in ours {
        let b = BufferPerMac::of(&ArchConfig::preset(kind));
        println!(
            "{label:<16} {:>8.3}B {:>11.2}B {:>7.2}B  (ours)",
            b.operands_bytes,
            b.accumulator_bytes,
            b.total_bytes()
        );
        totals.push((kind, b.total_bytes()));
    }
    println!();
    println!("paper totals: SA-SMT 20 B | SA 6 B | S2TA-W 0.875 B | S2TA-AW 4.75 B");
    let get = |k| totals.iter().find(|(kk, _)| *kk == k).expect("present").1;
    assert!(get(ArchKind::S2taW) < get(ArchKind::Sa));
    assert!(get(ArchKind::S2taAw) < get(ArchKind::Sa));
    assert!(get(ArchKind::SaSmtT2Q2) > get(ArchKind::Sa));
    assert!(PUBLISHED_BUFFERS.iter().all(|(_, o, a)| o + a > get(ArchKind::SaSmtT2Q2)));
    println!("shape check PASSED: gather/scatter >> SMT > SA > TPE designs");
}
