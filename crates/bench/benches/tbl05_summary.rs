//! Table 5: qualitative summary of the design space.

use s2ta_bench::header;
use s2ta_core::summary::table5;

fn main() {
    header("Tbl. 5", "Summary of designs evaluated and previous works");
    println!(
        "{:<10} | {:<9} | {:<12} | {:<8} | {:^4} | {:^8}",
        "arch", "W spars.", "A spars.", "overhead", "ZVCG", "var. DBB"
    );
    println!("{}", "-".repeat(66));
    for row in table5() {
        println!("{row}");
    }
    println!();
    println!("S2TA-AW is the only design with joint W/A DBB and variable (time-unrolled) DBB.");
}
