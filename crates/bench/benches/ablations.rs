//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Block size (BZ)** — accuracy proxy (magnitude retention) vs
//!    hardware cost (mux ways): larger blocks retain more magnitude at
//!    the same density but need wider muxes (paper Sec. 8.1).
//! 2. **Fixed vs variable A-DBB** — a fixed 4/8 datapath running a 2/8
//!    layer wastes ~50% of its issue slots; the time-unrolled design
//!    keeps utilization constant (paper Sec. 5.2).
//! 3. **Outer-product vs dot-product TPE** — buffer bytes per MAC
//!    (paper Sec. 6.1: the outer product reuses staged operands more).
//! 4. **DAP stage cap at 5** — marginal speedup of supporting NNZ > 5
//!    (paper Sec. 6.2).

use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta_bench::header;
use s2ta_core::buffers::BufferPerMac;
use s2ta_core::microbench::run_point;
use s2ta_core::{ArchConfig, ArchKind};
use s2ta_dbb::{prune, BlockAxis, DbbConfig};
use s2ta_tensor::sparsity::SparseSpec;

fn ablate_block_size() {
    header("Ablation 1", "DBB block size: accuracy proxy vs mux cost (density 50%)");
    let mut rng = StdRng::seed_from_u64(s2ta_bench::SEED);
    let m = SparseSpec::dense().matrix(64, 512, &mut rng);
    println!(
        "{:<8} {:>11} {:>20} {:>10}",
        "config", "retention", "mask overhead b/blk", "mux ways"
    );
    let mut prev = 0.0;
    for (nnz, bz) in [(2usize, 4usize), (4, 8), (8, 16)] {
        let cfg = DbbConfig::new(nnz, bz);
        let r = prune::magnitude_retention(&m, BlockAxis::Rows, cfg);
        println!("{:<8} {:>10.1}% {:>20} {:>10}", cfg.to_string(), r * 100.0, bz.div_ceil(8), bz);
        assert!(r >= prev, "larger blocks at equal density must retain >= magnitude");
        prev = r;
    }
    println!("=> BZ=8 balances retention against mux width (the paper's choice)");
}

fn ablate_fixed_vs_variable() {
    header("Ablation 2", "Fixed 4/8 A-DBB datapath vs time-unrolled variable A-DBB");
    // A spatially-unrolled fixed 4/8 datapath issues 4 slots per block
    // regardless of the layer's real density; the time-unrolled design
    // issues exactly the layer NNZ.
    println!("{:<12} {:>16} {:>18}", "layer A-DBB", "fixed-4/8 util", "time-unrolled util");
    for nnz in [1usize, 2, 3, 4] {
        let fixed_util = nnz as f64 / 4.0;
        // Time-unrolled: issue slots = nnz, so utilization of issued
        // slots is constant (1.0 modulo weight gating).
        println!("{:>8}/8 {:>15.0}% {:>17.0}%", nnz, fixed_util * 100.0, 100.0);
    }
    // Cross-check with the simulator: cycles scale with NNZ.
    let c2 = run_point(ArchKind::S2taAw, 0.5, 0.75, s2ta_bench::SEED).report.events.cycles;
    let c4 = run_point(ArchKind::S2taAw, 0.5, 0.50, s2ta_bench::SEED).report.events.cycles;
    let ratio = c4 as f64 / c2 as f64;
    println!("simulated cycles 4/8 vs 2/8: {ratio:.2}x (ideal 2.0x)");
    assert!((ratio - 2.0).abs() < 0.1);
    println!("=> the fixed datapath would idle 50% of its MACs on a 2/8 layer");
}

fn ablate_tpe_style() {
    header("Ablation 3", "Dot-product vs outer-product TPE: buffer bytes per MAC");
    let w = BufferPerMac::of(&ArchConfig::preset(ArchKind::S2taW));
    let aw = BufferPerMac::of(&ArchConfig::preset(ArchKind::S2taAw));
    println!("dot-product  (S2TA-W 4x4x4_4x8): operands {:.3} B/MAC", w.operands_bytes);
    println!("outer-product (S2TA-AW 8x4x4_8x8): operands {:.3} B/MAC", aw.operands_bytes);
    println!("(both are orders of magnitude below the 864+ B/MAC of gather/scatter designs)");
}

fn ablate_dap_cap() {
    header("Ablation 4", "DAP maxpool-stage cap: speedup of supporting NNZ > 5");
    // Speedup from serializing at nnz vs running dense (8 cycles).
    println!("{:<8} {:>10} {:>18}", "NNZ", "speedup", "gain vs NNZ-1");
    let mut prev = 1.0;
    for nnz in (1..=8).rev() {
        let speedup = 8.0 / nnz as f64;
        let gain = speedup / prev;
        println!("{:>5}/8 {:>9.2}x {:>17.2}x", nnz, speedup, gain);
        prev = speedup;
    }
    println!("=> gains from 8/8 -> 6/8 are <15% each; the hardware caps at 5 stages");
    println!("   and bypasses DAP above it (paper Sec. 6.2)");
}

fn ablate_dram_traffic() {
    header("Ablation 5", "DRAM traffic with and without DBB compression (VGG16)");
    use s2ta_core::memory::{MemoryConfig, ModelResidency};
    let mem = MemoryConfig::default();
    let model = s2ta_models::vgg16();
    println!(
        "{:<12} {:>12} {:>16} {:>14}",
        "arch", "DRAM MB", "streamed-W layers", "spilled-A layers"
    );
    let mut dense_mb = 0.0;
    for kind in [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw] {
        let r = ModelResidency::of(&ArchConfig::preset(kind), &mem, &model);
        let mb = r.total_dram_bytes() as f64 / 1e6;
        if kind == ArchKind::SaZvcg {
            dense_mb = mb;
        }
        println!(
            "{:<12} {:>12.1} {:>16} {:>14}",
            kind.to_string(),
            mb,
            r.streamed_weight_layers(),
            r.spilled_act_layers()
        );
    }
    let aw = ModelResidency::of(&ArchConfig::preset(ArchKind::S2taAw), &mem, &model);
    assert!(aw.total_dram_bytes() < (dense_mb * 1e6) as u64);
    println!("=> compression pays twice: fewer spills and less bandwidth (Sec. 6.3)");
}

fn ablate_weight_unrolled() {
    header(
        "Ablation 6",
        "Weight-unrolled time-unrolling (footnote 2): variable W-DBB, fixed 4/8 A-DBB",
    );
    use rand::SeedableRng;
    use s2ta_dbb::dap::{dap_matrix, LayerNnz};
    use s2ta_dbb::DbbMatrix;
    use s2ta_sim::{tpe_wa, ArrayGeometry};
    let mut rng = StdRng::seed_from_u64(s2ta_bench::SEED);
    let raw_w = SparseSpec::random(0.2).matrix(256, 512, &mut rng);
    let raw_a = SparseSpec::random(0.3).matrix(512, 64, &mut rng);
    let (a44, _) = dap_matrix(&raw_a, 8, LayerNnz::Prune(4));
    let geom = ArrayGeometry::s2ta_aw();
    println!("{:<8} {:>10} {:>9}", "W-DBB", "cycles", "speedup");
    let mut base = 0u64;
    for nnz in [4usize, 3, 2, 1] {
        let pruned = prune::prune_matrix(&raw_w, BlockAxis::Rows, DbbConfig::new(nnz, 8));
        let wdbb = DbbMatrix::compress(&pruned, BlockAxis::Rows, DbbConfig::new(nnz, 8))
            .expect("pruned weights satisfy their bound");
        let ev = tpe_wa::run_wa_perf(&geom, &wdbb, &a44);
        if nnz == 4 {
            base = ev.cycles;
        }
        println!("{:>5}/8 {:>10} {:>8.2}x", nnz, ev.cycles, base as f64 / ev.cycles as f64);
    }
    println!("=> the mirror image of Fig. 9d: cycles track the weight NNZ");
}

fn main() {
    ablate_block_size();
    ablate_fixed_vs_variable();
    ablate_tpe_style();
    ablate_dap_cap();
    ablate_dram_traffic();
    ablate_weight_unrolled();
    println!("\nablation suite complete");
}
