//! Criterion kernel benchmarks: the hot paths of the simulator and the
//! DBB toolchain. These measure *our implementation's* wall-clock
//! speed (not the simulated accelerator), guarding against regressions
//! that would make the table/figure benches impractically slow.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta_dbb::dap::{dap_matrix, DapUnit, LayerNnz};
use s2ta_dbb::{prune, DbbConfig, DbbVector};
use s2ta_sim::smt::SmtConfig;
use s2ta_sim::{smt, systolic, tpe, ArrayGeometry};
use s2ta_tensor::sparsity::SparseSpec;
use s2ta_tensor::{gemm_ref, Matrix};
use std::hint::black_box;

fn operands(m: usize, k: usize, n: usize, sp: f64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(7);
    (SparseSpec::random(sp).matrix(m, k, &mut rng), SparseSpec::random(sp).matrix(k, n, &mut rng))
}

fn bench_gemm_ref(c: &mut Criterion) {
    let (w, a) = operands(64, 576, 196, 0.5);
    c.bench_function("gemm_ref 64x576x196", |b| {
        b.iter(|| black_box(gemm_ref(black_box(&w), black_box(&a))))
    });
}

fn bench_dbb_compress(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let data = SparseSpec::random(0.5).matrix(1, 4096, &mut rng);
    let pruned = prune::prune_matrix(&data, s2ta_dbb::BlockAxis::Rows, DbbConfig::new(4, 8));
    c.bench_function("dbb_compress 4096 elems 4/8", |b| {
        b.iter(|| black_box(DbbVector::compress(black_box(pruned.row(0)), DbbConfig::new(4, 8))))
    });
}

fn bench_dap_unit(c: &mut Criterion) {
    let unit = DapUnit::new(8);
    let block = [3i8, -9, 0, 4, 7, 0, -2, 5];
    c.bench_function("dap_unit prune 8-block top4", |b| {
        b.iter(|| {
            let mut blk = black_box(block);
            black_box(unit.prune(&mut blk, 4))
        })
    });
}

fn bench_dap_matrix(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let a = SparseSpec::random(0.4).matrix(512, 196, &mut rng);
    c.bench_function("dap_matrix 512x196 top3", |b| {
        b.iter(|| black_box(dap_matrix(black_box(&a), 8, LayerNnz::Prune(3))))
    });
}

fn bench_systolic_perf(c: &mut Criterion) {
    let (w, a) = operands(256, 1152, 256, 0.5);
    let g = ArrayGeometry::sa_baseline();
    c.bench_function("systolic run_perf typical conv", |b| {
        b.iter(|| black_box(systolic::run_perf(&g, true, black_box(&w), black_box(&a))))
    });
}

fn bench_aw_perf(c: &mut Criterion) {
    let (w, a) = operands(256, 1152, 256, 0.5);
    let wdbb = prune::prune_and_compress(&w, DbbConfig::new(4, 8));
    let (adbb, _) = dap_matrix(&a, 8, LayerNnz::Prune(4));
    let g = ArrayGeometry::s2ta_aw();
    c.bench_function("tpe run_aw_perf typical conv", |b| {
        b.iter(|| black_box(tpe::run_aw_perf(&g, black_box(&wdbb), black_box(&adbb))))
    });
}

fn bench_smt_tile(c: &mut Criterion) {
    let (w, a) = operands(32, 512, 64, 0.5);
    let g = ArrayGeometry::sa_baseline();
    c.bench_function("smt simulate 32x64 tile K=512", |b| {
        b.iter(|| black_box(smt::run(&g, SmtConfig::t2q2(), black_box(&w), black_box(&a))))
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm_ref,
        bench_dbb_compress,
        bench_dap_unit,
        bench_dap_matrix,
        bench_systolic_perf,
        bench_aw_perf,
        bench_smt_tile
);
criterion_main!(kernels);
