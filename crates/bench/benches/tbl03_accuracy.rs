//! Table 3: accuracy of DBB pruning variants with fine-tuning.
//!
//! The paper fine-tunes ImageNet CNNs; we reproduce the experiment's
//! *trend* on the synthetic task (DESIGN.md Sec. 5): DBB pruning drops
//! accuracy, fine-tuning recovers it to near-baseline, tighter bounds
//! cost more, joint A/W-DBB costs slightly more than either alone.

use s2ta_bench::header;
use s2ta_nn::table3::{run_table3, Table3Config};

fn main() {
    header("Tbl. 3", "Accuracy of DBB variants (synthetic-task substitution)");
    let rows = run_table3(&Table3Config::full());
    for r in &rows {
        println!("{r}");
    }
    println!();
    println!("paper trend (ImageNet): baseline ~X%; A-DBB/W-DBB alone within ~0.5%;");
    println!("joint within ~1%; e.g. MobileNetV1 A-DBB pre-finetune 56.1% -> 70.2% after");
    let baseline = rows[0].accuracy_pct;
    for r in &rows[1..] {
        assert!(
            baseline - r.accuracy_pct < 8.0,
            "{}: fine-tuned variant too far below baseline",
            r.label
        );
    }
    // The A-DBB row demonstrates the drop-then-recover story.
    let adbb = rows.iter().find(|r| r.label.starts_with("A-DBB")).expect("A-DBB row");
    assert!(adbb.accuracy_pct >= adbb.pre_finetune_pct);
    println!("shape check PASSED: fine-tuning recovers DBB accuracy loss");
}
