//! Figure 1: energy breakdown of a conventional dense INT8 systolic
//! array on a typical conv layer with ~50% sparsity.
//!
//! Paper: SRAM buffers 21% | PE/MAC buffers 49% | MAC datapath 20% |
//! activation function 10%. The headline insight is that the MAC itself
//! is a small slice — the operand/result buffers dominate.

use s2ta_bench::header;
use s2ta_core::microbench::run_point;
use s2ta_core::ArchKind;
use s2ta_energy::{EnergyBreakdown, TechParams};

fn main() {
    header("Fig. 1", "Energy breakdown, dense INT8 systolic array (16nm)");
    let point = run_point(ArchKind::Sa, 0.5, 0.5, s2ta_bench::SEED);
    let e = EnergyBreakdown::of(&point.report.events, &TechParams::tsmc16());
    let s = e.shares();
    let sram = (s[2] + s[3]) * 100.0;
    let buffers = s[1] * 100.0;
    let mac = s[0] * 100.0;
    let actfn = s[5] * 100.0;
    println!("component        measured   paper");
    println!("SRAM buffers     {sram:5.1}%     21%");
    println!("PE-array buffers {buffers:5.1}%     49%");
    println!("MAC datapath     {mac:5.1}%     20%");
    println!("activation fn    {actfn:5.1}%     10%");
    println!();
    println!("total energy {:.1} uJ on the typical conv at 50% W / 50% A sparsity", e.total_uj());
    assert!(buffers > mac, "buffers must dominate the MAC datapath (the paper's key insight)");
    assert!(buffers > sram, "PE-array buffers are the largest component");
    println!("shape check PASSED: buffers > SRAM > ... and MAC ~20%");
}
