//! Table 4: the grand comparison — area, peak throughput, peak
//! efficiency, and AlexNet / MobileNet inference rate & efficiency for
//! every architecture, in 16nm and 65nm.

use s2ta_bench::{conv_reports, header};
use s2ta_core::buffers::hw_spec;
use s2ta_core::microbench::run_point;
use s2ta_core::{ArchConfig, ArchKind};
use s2ta_energy::area::{AreaBreakdown, AreaParams};
use s2ta_energy::{EnergyBreakdown, TechParams, Technology};
use s2ta_models::{alexnet, mobilenet_v1};

fn peak_tops_per_watt(kind: ArchKind, sparsity: f64, tech: &TechParams) -> f64 {
    let p = run_point(kind, sparsity, sparsity, s2ta_bench::SEED);
    let e = EnergyBreakdown::of(&p.report.events, tech);
    p.report.macs as f64 * 2.0 / (e.total_pj() * 1e-12) / 1e12
}

fn section(node: Technology) {
    let tech = TechParams::for_node(node);
    let area_params = match node {
        Technology::Tsmc16 => AreaParams::tsmc16(),
        Technology::Tsmc65 => AreaParams::tsmc65(),
    };
    println!("\n----- {node} implementations ({} GHz) -----", tech.clock_hz / 1e9);
    let archs = [ArchKind::SaZvcg, ArchKind::SaSmtT2Q2, ArchKind::S2taW, ArchKind::S2taAw];
    println!(
        "{:<13} {:>9} {:>10} {:>12} {:>13}",
        "arch", "area mm2", "peak TOPS", "TOPS/W @50%", "TOPS/W @75%"
    );
    for &k in &archs {
        let cfg = ArchConfig::preset(k);
        let area = AreaBreakdown::of(&hw_spec(&cfg), &area_params).total_mm2();
        let peak = cfg.peak_effective_tops(tech.clock_hz, 4);
        println!(
            "{:<13} {:>9.1} {:>10.1} {:>12.1} {:>13.1}",
            k.to_string(),
            area,
            peak,
            peak_tops_per_watt(k, 0.5, &tech),
            peak_tops_per_watt(k, 0.75, &tech)
        );
    }

    for model in [alexnet(), mobilenet_v1()] {
        println!("\n{} (conv layers):", model.name);
        println!("{:<13} {:>12} {:>11} {:>9}", "arch", "x1e3 inf/s", "x1e3 inf/J", "TOPS/W");
        for (k, r) in conv_reports(&model, &archs) {
            println!(
                "{:<13} {:>12.2} {:>11.2} {:>9.2}",
                k.to_string(),
                r.inferences_per_second(&tech) / 1e3,
                r.inferences_per_joule(&tech) / 1e3,
                r.tops_per_watt(&tech)
            );
        }
    }
}

fn main() {
    header("Tbl. 4", "Grand comparison (ours; SparTen/Eyeriss-v2 rows are published values)");
    println!("published (for reference): SparTen 45nm 0.2 TOPS, 0.766 mm2 (logic);");
    println!("  Eyeriss v2 65nm 0.152 TOPS, 3.38 mm2 (logic), AlexNet 0.66e3 inf/J");
    section(Technology::Tsmc16);
    section(Technology::Tsmc65);

    // Headline shape assertions (16nm).
    let t16 = TechParams::tsmc16();
    let aw50 = peak_tops_per_watt(ArchKind::S2taAw, 0.5, &t16);
    let aw75 = peak_tops_per_watt(ArchKind::S2taAw, 0.75, &t16);
    let zvcg50 = peak_tops_per_watt(ArchKind::SaZvcg, 0.5, &t16);
    let smt50 = peak_tops_per_watt(ArchKind::SaSmtT2Q2, 0.5, &t16);
    println!();
    println!(
        "S2TA-AW TOPS/W: {aw50:.1} @50%, {aw75:.1} @75% (paper: 14.3 / 26.5); \
         SA-ZVCG {zvcg50:.1} (paper 10.5); SA-SMT {smt50:.1} (paper 8.0)"
    );
    assert!(aw75 > aw50, "efficiency must grow with sparsity");
    assert!(aw50 > zvcg50, "S2TA-AW must beat SA-ZVCG");
    assert!(smt50 < zvcg50, "SMT's FIFOs must cost efficiency");
    println!("shape check PASSED");
}
