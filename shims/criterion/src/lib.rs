//! Offline stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion) crate API this workspace
//! uses.
//!
//! The build container cannot reach crates.io, so micro-benchmarks run
//! on this small wall-clock harness instead: [`Criterion::bench_function`]
//! warms the closure up, runs `sample_size` timed samples of an
//! adaptively chosen iteration batch, and prints the per-iteration
//! minimum / mean. There are no statistics, plots or baselines — the
//! output is for eyeballing regressions, not rigorous measurement.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::calibrated();
        // Warm-up and batch-size calibration pass.
        f(&mut b);
        b.begin_sampling();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let (min, mean) = b.per_iter();
        println!("{id:<44} min {:>12} | mean {:>12}", fmt_duration(min), fmt_duration(mean));
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    calibrating: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    fn calibrated() -> Self {
        Self { iters: 1, calibrating: true, samples: Vec::new() }
    }

    fn begin_sampling(&mut self) {
        self.calibrating = false;
        self.samples.clear();
    }

    /// Times `inner`, batching iterations so each sample runs long
    /// enough for the clock to resolve.
    pub fn iter<O, F>(&mut self, mut inner: F)
    where
        F: FnMut() -> O,
    {
        if self.calibrating {
            // Grow the batch until one batch takes >= ~1 ms (cap the
            // growth so pathological benches still terminate).
            let mut iters: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(inner());
                }
                let elapsed = start.elapsed();
                if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                    self.iters = iters;
                    return;
                }
                iters *= 2;
            }
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(inner());
        }
        self.samples.push(start.elapsed());
    }

    /// `(min, mean)` per-iteration time over the recorded samples.
    fn per_iter(&self) -> (Duration, Duration) {
        if self.samples.is_empty() || self.iters == 0 {
            return (Duration::ZERO, Duration::ZERO);
        }
        let min = *self.samples.iter().min().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        (min / self.iters as u32, total / (self.samples.len() as u32 * self.iters as u32))
    }
}

/// Declares a benchmark group: both the `name/config/targets` form and
/// the positional form of the real crate are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        assert!(runs > 3, "closure must actually run, got {runs}");
    }

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(simple, target);
    criterion_group!(
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = target
    );

    #[test]
    fn groups_invoke_targets() {
        simple();
        configured();
    }
}
