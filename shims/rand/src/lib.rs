//! Offline stand-in for the subset of the [`rand`](https://docs.rs/rand)
//! crate API this workspace uses.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a small, dependency-free implementation instead of
//! the real crate: a [`rngs::StdRng`] built on xoshiro256** seeded via
//! SplitMix64, the [`Rng`]/[`SeedableRng`]/[`RngCore`] traits with the
//! methods the codebase calls (`gen_bool`, `gen_range`, `gen`),
//! [`distributions::Uniform`], [`seq::SliceRandom::shuffle`] and the
//! deterministic [`rngs::mock::StepRng`].
//!
//! The streams differ from the real `rand` crate's, but every consumer
//! in this workspace only relies on determinism-for-a-seed and on
//! statistical uniformity, both of which hold here.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw random source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the standard distribution of `T` (all bit
    /// patterns equally likely for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable random source (only the `seed_from_u64` entry point is
/// provided; nothing in this workspace uses byte-array seeds).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling below `n` (exclusive) without modulo bias.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = (u64::MAX / n) * n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + unit_f64(rng.next_u64()) as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic for a seed, statistically strong
    /// for simulation purposes, and cheap to construct.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut state);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// A deterministic counter "generator": yields `initial`,
        /// `initial + increment`, ... (wrapping).
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            next: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the counter at `initial` with the given step.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self { next: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.next;
                self.next = self.next.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Distribution objects (the `Uniform` subset).
pub mod distributions {
    use super::{RngCore, SampleRange};
    use std::ops::RangeInclusive;

    /// A distribution that can be sampled with an [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed interval.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Uniform<T: Copy> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T>
    where
        RangeInclusive<T>: SampleRange<T>,
    {
        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            Self { low, high }
        }
    }

    impl<T: Copy> Distribution<T> for Uniform<T>
    where
        RangeInclusive<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (self.low..=self.high).sample_single(rng)
        }
    }
}

/// Sequence-related helpers (the `shuffle` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Randomized operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [0.1, 0.5, 0.9] {
            let hits = (0..20_000).filter(|_| rng.gen_bool(p)).count() as f64 / 20_000.0;
            assert!((hits - p).abs() < 0.02, "p={p} got {hits}");
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 255];
        for _ in 0..20_000 {
            let v = rng.gen_range(-127i8..=127);
            seen[(v as i16 + 127) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive i8 range must cover all values");
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn uniform_distribution_matches_range() {
        use super::distributions::{Distribution, Uniform};
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new_inclusive(-5i8, 5);
        let mut sum = 0i64;
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((-5..=5).contains(&v));
            sum += v as i64;
        }
        assert!(sum.abs() < 500, "mean should be near zero, sum {sum}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(10, 3);
        assert_eq!([r.next_u64(), r.next_u64(), r.next_u64()], [10, 13, 16]);
    }
}
