//! Offline stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest) crate API this workspace uses.
//!
//! The build container cannot reach crates.io, so property tests run on
//! this small, dependency-free harness instead: the [`proptest!`] macro
//! accepts the same `fn name(arg in strategy, ...) { body }` item syntax
//! (including `#![proptest_config(...)]`), generates inputs from seeded
//! [`rand::rngs::StdRng`] streams and reports the failing inputs on
//! panic. Unlike the real crate there is **no shrinking** — the first
//! failing case is reported as-is — and strategies are limited to the
//! ones the workspace uses: numeric ranges, [`arbitrary::any`], [`Just`]
//! and [`collection::vec`](crate::collection::vec).
//!
//! Case generation is deterministic per test (seeded from the test's
//! module path and name), so failures reproduce across runs.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use strategy::{Just, Strategy};

/// Test-runner configuration and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// The deterministic per-case RNG: seeded from the test identity and
    /// the case index so every run generates the same input stream.
    pub fn case_rng(test_id: &str, case: u64) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_id.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Input-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::SampleRange;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case inputs.
    ///
    /// The real proptest `Strategy` produces shrinkable value trees; this
    /// stand-in just produces values.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: Copy + Debug> Strategy for Range<T>
    where
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            self.clone().sample_single(rng)
        }
    }

    impl<T: Copy + Debug> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            self.clone().sample_single(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Vector lengths: either an exact size or a half-open range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `len` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias module so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Rejects the current case (it does not count towards the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            ::std::format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests.
///
/// Accepts the same surface syntax as the real crate for the forms this
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            let mut accepted: u32 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                if case > config.cases as u64 * 32 + 1024 {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                        test_id, accepted, config.cases
                    );
                }
                let mut rng = $crate::test_runner::case_rng(test_id, case);
                case += 1;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&::std::format!(
                        "  {} = {:?}\n", stringify!($arg), $arg
                    ));)+
                    s
                };
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}:\n{}\ninputs:\n{}",
                            test_id,
                            case - 1,
                            msg,
                            inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3usize..9, y in 0.0f64..1.0, z in 1i8..=5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..=5).contains(&z));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(any::<i8>(), 8..16), w in prop::collection::vec(any::<u64>(), 4)) {
            prop_assert!((8..16).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn just_yields_value(v in Just(41usize)) {
            prop_assert_eq!(v, 41);
        }
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = crate::test_runner::case_rng("t", 0);
        let s = any::<u64>();
        let a = s.new_value(&mut rng);
        let b = s.new_value(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
