//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! work-stealing deques ([`deque`]) and a persistent borrowed-closure
//! thread pool ([`pool`]) built on them.
//!
//! The container cannot reach crates.io, so like `shims/rand` this
//! crate reimplements exactly the API surface the workspace needs. The
//! deques are mutex-based (correctness over lock-freedom — the jobs
//! they carry are coarse batch simulations, microseconds to
//! milliseconds each, so deque traffic is nowhere near the contention
//! regime Chase-Lev targets). The pool is the one place in the
//! workspace that needs `unsafe`: executing closures that borrow the
//! caller's stack on threads that outlive the call requires erasing a
//! lifetime, which every persistent scoped executor (rayon, crossbeam's
//! own `scope`) does internally. The safety argument is documented at
//! the single `unsafe` block in [`pool`]; every application crate in
//! the workspace keeps `#![forbid(unsafe_code)]`.

#![deny(missing_docs)]

pub mod deque;
pub mod pool;
