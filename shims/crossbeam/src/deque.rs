//! Injector / worker / stealer deques, API-compatible with
//! `crossbeam_deque` for the subset the pool uses.
//!
//! `Injector<T>` is the global FIFO every producer pushes into;
//! `Worker<T>` is a worker-local LIFO deque whose owner pushes and pops
//! the hot end while other workers [`Stealer::steal`] the cold end.
//! Mutex-based: the pool's jobs are coarse (whole batch simulations),
//! so a lock-free Chase-Lev buys nothing here, and a mutex keeps the
//! shim trivially correct.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// A race was lost; the caller may retry.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// A global FIFO injector queue shared by all workers.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Self { queue: Mutex::new(VecDeque::new()) }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.queue.lock().expect("injector poisoned").push_back(task);
    }

    /// Steals the front task, FIFO order.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("injector poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the queue is empty right now (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("injector poisoned").is_empty()
    }

    /// Number of queued tasks right now (racy, advisory only).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("injector poisoned").len()
    }
}

/// A worker-local deque: the owner pushes/pops the back (LIFO, cache
/// warm), stealers take the front (FIFO, oldest first).
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// An empty worker deque (the `new_lifo` flavour — the only one the
    /// pool uses).
    pub fn new_lifo() -> Self {
        Self { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.queue.lock().expect("worker deque poisoned").push_back(task);
    }

    /// Pops from the owner's end (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("worker deque poisoned").pop_back()
    }

    /// Whether the deque is empty right now (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("worker deque poisoned").is_empty()
    }

    /// A handle other workers use to steal from this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// A stealing handle onto some [`Worker`]'s deque.
#[derive(Debug, Clone)]
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the victim's deque.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("worker deque poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some(1));
        assert_eq!(inj.steal().success(), Some(2));
        assert_eq!(inj.steal(), Steal::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn worker_is_lifo_and_steal_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3)); // owner takes the hot end
        assert_eq!(s.steal().success(), Some(1)); // thief takes the cold end
        assert_eq!(w.pop(), Some(2));
        assert!(w.is_empty());
        assert_eq!(s.steal(), Steal::Empty);
    }
}
