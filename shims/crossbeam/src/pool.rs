//! A persistent thread pool executing *borrowed* index jobs.
//!
//! [`Pool::run`] executes `job(i)` for every `i in 0..len`, spreading
//! the indices over the pool's persistent worker threads plus the
//! calling thread, and returns when **all** indices have completed and
//! no worker can still observe the job. The job may borrow the caller's
//! stack (operands, result slots) — the property that lets the
//! workspace's fan-outs run on a persistent pool instead of spawning
//! scoped threads per burst.
//!
//! Work distribution: the caller pushes one *ticket* per invited worker
//! into the shared [`Injector`]; a worker that steals a ticket attaches
//! to the batch and then claims indices from the batch's shared atomic
//! cursor until the batch is exhausted. The cursor is the fine-grained
//! steal point — an idle worker always takes the globally next index,
//! so uneven job costs self-balance exactly like a steal deque, without
//! per-item queue traffic.
//!
//! Determinism: which thread runs `job(i)` is scheduling-dependent, but
//! `run` imposes no order on observable results — callers write results
//! into per-index slots, so output order is fixed by construction.

use crate::deque::{Injector, Steal};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// `gate` value once a batch is sealed: no worker may attach anymore.
const CLOSED: isize = -1;

/// A lifetime-erased pointer to the caller's borrowed job closure.
///
/// Only [`Pool::run`] creates these, and it guarantees the pointee
/// outlives every dereference (see the safety comment there), so the
/// pointer may travel to worker threads.
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and `Pool::run` keeps it alive until every worker has detached
// from the batch, so sending the pointer to pool threads is sound.
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

/// One fan-out in flight: the erased job, its index cursor and the
/// completion / attachment bookkeeping the caller synchronizes on.
struct Batch {
    job: JobPtr,
    len: usize,
    /// Next unclaimed index; `fetch_add` is the steal operation.
    next: AtomicUsize,
    /// Indices whose `job(i)` call has returned (or unwound).
    completed: AtomicUsize,
    /// Attached-worker count, or [`CLOSED`] once sealed.
    gate: AtomicIsize,
    /// Set when any `job(i)` panicked (the caller re-raises).
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Batch {
    /// Attaches a worker: succeeds only while the batch is not sealed.
    fn try_attach(&self) -> bool {
        self.gate
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |g| {
                if g == CLOSED {
                    None
                } else {
                    Some(g + 1)
                }
            })
            .is_ok()
    }

    fn detach(&self) {
        let _g = self.lock.lock().expect("batch lock poisoned");
        self.gate.fetch_sub(1, Ordering::AcqRel);
        self.cv.notify_all();
    }

    /// Claims and runs indices until the cursor is exhausted. Panics in
    /// the job are recorded and swallowed here (workers must survive);
    /// the caller re-raises. Every claimed index counts as completed
    /// even if it unwound, so the caller's completion wait cannot hang.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return;
            }
            // SAFETY: `self.job` points at the caller's closure, which
            // `Pool::run` keeps alive until the batch is sealed and all
            // attached workers (including us) have detached.
            let job = unsafe { &*self.job.0 };
            if catch_unwind(AssertUnwindSafe(|| job(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.len {
                let _g = self.lock.lock().expect("batch lock poisoned");
                self.cv.notify_all();
            }
        }
    }
}

struct Shared {
    injector: Injector<Arc<Batch>>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
}

/// A persistent pool of worker threads for borrowed index jobs.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `threads` persistent workers (0 is fine: every
    /// [`Pool::run`] then executes entirely on the calling thread).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("s2ta-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of persistent worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Executes `job(i)` for every `i in 0..len` and returns when all
    /// calls have completed. At most `max_helpers` pool workers join in
    /// (the calling thread always participates), so `max_helpers == 0`
    /// is an exact serial execution on the caller.
    ///
    /// # Panics
    ///
    /// Panics if any `job(i)` panicked (after all indices completed and
    /// the batch is sealed, so the unwind is clean).
    pub fn run(&self, len: usize, max_helpers: usize, job: &(dyn Fn(usize) + Sync)) {
        if len == 0 {
            return;
        }
        let helpers = max_helpers.min(self.handles.len()).min(len.saturating_sub(1));
        if helpers == 0 {
            for i in 0..len {
                job(i);
            }
            return;
        }
        // SAFETY (the one lifetime erasure in the workspace): the
        // borrowed `job` is published to worker threads as a raw
        // pointer. This function guarantees the pointee outlives every
        // dereference: before returning — on success *or* unwind (see
        // `SealOnDrop`) — it (1) waits until `completed == len`, after
        // which no worker will call the job again (any later-claimed
        // index is `>= len`), and (2) seals the attachment gate and
        // waits for `gate == 0`, after which no attached worker exists
        // and none can attach — so no thread can still hold or obtain
        // the pointer.
        let erased: &(dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(job) };
        let batch = Arc::new(Batch {
            job: JobPtr(erased as *const _),
            len,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            gate: AtomicIsize::new(0),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        for _ in 0..helpers {
            self.shared.injector.push(Arc::clone(&batch));
        }
        {
            let _g = self.shared.sleep_lock.lock().expect("pool sleep lock poisoned");
            self.shared.sleep_cv.notify_all();
        }
        let seal = SealOnDrop(&batch);
        // The caller participates: claim indices like any worker, but
        // re-raise panics (after the guard has sealed the batch).
        loop {
            let i = batch.next.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            let r = catch_unwind(AssertUnwindSafe(|| job(i)));
            if batch.completed.fetch_add(1, Ordering::AcqRel) + 1 == len {
                let _g = batch.lock.lock().expect("batch lock poisoned");
                batch.cv.notify_all();
            }
            if let Err(p) = r {
                resume_unwind(p); // `seal` drains the batch on the way out
            }
        }
        drop(seal); // waits for completion, seals the gate
        if batch.panicked.load(Ordering::Acquire) {
            panic!("a pool job panicked");
        }
    }
}

/// Guard that makes [`Pool::run`]'s safety contract hold on every exit
/// path: waits for all indices to complete, then seals the gate and
/// waits for every attached worker to detach.
struct SealOnDrop<'a>(&'a Batch);

impl Drop for SealOnDrop<'_> {
    fn drop(&mut self) {
        let b = self.0;
        let mut g = b.lock.lock().expect("batch lock poisoned");
        while b.completed.load(Ordering::Acquire) < b.len {
            g = b.cv.wait(g).expect("batch lock poisoned");
        }
        loop {
            match b.gate.compare_exchange(0, CLOSED, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(_) => g = b.cv.wait(g).expect("batch lock poisoned"),
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.injector.steal() {
            Steal::Success(batch) => {
                // Skip exhausted batches cheaply; otherwise attach,
                // work the cursor dry, detach.
                if batch.next.load(Ordering::Relaxed) < batch.len && batch.try_attach() {
                    batch.work();
                    batch.detach();
                }
            }
            _ => {
                let mut g = shared.sleep_lock.lock().expect("pool sleep lock poisoned");
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if !shared.injector.is_empty() {
                        break;
                    }
                    g = shared.sleep_cv.wait(g).expect("pool sleep lock poisoned");
                }
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_lock.lock().expect("pool sleep lock poisoned");
            self.shared.sleep_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(hits.len(), usize::MAX, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_helpers_run_serially_and_zero_len_is_a_noop() {
        let pool = Pool::new(2);
        let count = AtomicU64::new(0);
        pool.run(0, usize::MAX, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        pool.run(5, 0, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let pool = Pool::new(3);
        for round in 0..50 {
            let sum = AtomicU64::new(0);
            pool.run(round + 1, usize::MAX, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            let n = round as u64 + 1;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        }
    }

    #[test]
    fn job_panic_propagates_without_hanging() {
        let pool = Pool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, usize::MAX, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool survives and keeps working.
        let count = AtomicU64::new(0);
        pool.run(4, usize::MAX, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }
}
