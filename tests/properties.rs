//! Cross-crate property tests: invariants that must hold for *any*
//! shape, sparsity and DBB configuration, spanning the tensor -> dbb ->
//! sim -> core stack.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta::core::{Accelerator, ArchKind};
use s2ta::dbb::dap::{dap_matrix, LayerNnz};
use s2ta::dbb::{prune, BlockAxis, DbbConfig, DbbMatrix};
use s2ta::sim::{tpe, tpe_wa, ArrayGeometry};
use s2ta::tensor::sparsity::SparseSpec;
use s2ta::tensor::{conv_ref, gemm_ref, im2col, ConvShape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// im2col lowering is exact for arbitrary conv geometry.
    #[test]
    fn prop_im2col_equals_direct_conv(
        k in 1usize..5,
        c in 1usize..10,
        hw in 3usize..9,
        rs in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        wsp in 0.0f64..0.9,
        asp in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw + 2 * pad >= rs);
        let shape = ConvShape::new(k, c, hw, hw, rs, rs, stride, pad);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = SparseSpec::random(wsp).tensor(shape.weight_dims(), &mut rng);
        let x = SparseSpec::random(asp).tensor(shape.input_dims(), &mut rng);
        let lowered = gemm_ref(&shape.weights_as_matrix(&w), &im2col(&shape, &x));
        prop_assert_eq!(lowered, conv_ref(&shape, &w, &x));
    }

    /// The whole DBB tool-chain round-trips: prune -> compress ->
    /// decompress -> recompress is a fixed point.
    #[test]
    fn prop_dbb_toolchain_fixed_point(
        rows in 1usize..10,
        cols in 1usize..50,
        nnz in 1usize..=8,
        sp in 0.0f64..0.95,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = SparseSpec::random(sp).matrix(rows, cols, &mut rng);
        let cfg = DbbConfig::new(nnz, 8);
        let once = prune::prune_and_compress(&raw, cfg);
        let again = DbbMatrix::compress(&once.decompress(), BlockAxis::Rows, cfg)
            .expect("decompressed output satisfies its own bound");
        prop_assert_eq!(once.decompress(), again.decompress());
        prop_assert_eq!(once.storage_bytes(), again.storage_bytes());
    }

    /// Both time-unrolled variants compute the identical GEMM on the
    /// same compressed operands (they serialize different operands, but
    /// the arithmetic must agree).
    #[test]
    fn prop_aw_and_wa_variants_agree(
        m in 1usize..6,
        kb in 1usize..5,
        n in 1usize..6,
        wsp in 0.0f64..0.8,
        asp in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let k = kb * 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let wraw = SparseSpec::random(wsp).matrix(m, k, &mut rng);
        let araw = SparseSpec::random(asp).matrix(k, n, &mut rng);
        let wdbb = prune::prune_and_compress(&wraw, DbbConfig::new(4, 8));
        let (adbb, _) = dap_matrix(&araw, 8, LayerNnz::Prune(4));
        let g = ArrayGeometry::new(2, 4, 2, 2, 2, 8);
        let aw = tpe::run_aw(&g, &wdbb, &adbb);
        let wa = tpe_wa::run_wa(&g, &wdbb, &adbb);
        prop_assert_eq!(&aw.result, &wa.result);
        // Same non-zero products, however they are scheduled.
        prop_assert_eq!(aw.events.macs_active, wa.events.macs_active);
    }

    /// Architecture-independent accounting invariants on random layers.
    #[test]
    fn prop_event_invariants_across_archs(
        m in 1usize..40,
        k in 8usize..80,
        n in 1usize..40,
        sp in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = SparseSpec::random(sp).matrix(m, k, &mut rng);
        let a = SparseSpec::random(sp).matrix(k, n, &mut rng);
        for kind in [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw] {
            let ev = Accelerator::preset(kind)
                .run_gemm(&w, &a, LayerNnz::Prune(3), false);
            // Active MACs can never exceed the dense MAC count.
            prop_assert!(ev.macs_active <= (m * k * n) as u64, "{kind}");
            // Output writes and MCU work are bounded by output count
            // (compressed writes may be smaller).
            prop_assert!(ev.act_sram_write_bytes <= (m * n) as u64, "{kind}");
            prop_assert_eq!(ev.mcu_elements, (m * n) as u64, "arch {}", kind);
            prop_assert!(ev.cycles > 0, "{kind}");
        }
    }
}
