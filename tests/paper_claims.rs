//! The paper's headline quantitative claims, asserted as integration
//! tests (tight enough to catch regressions, loose enough for a
//! calibrated model — EXPERIMENTS.md records exact measured values).

use s2ta::core::buffers::BufferPerMac;
use s2ta::core::microbench::run_point;
use s2ta::core::{Accelerator, ArchConfig, ArchKind};
use s2ta::energy::{EnergyBreakdown, TechParams};
use s2ta::models::alexnet;

const SEED: u64 = 42;

/// Fig. 9d / abstract: S2TA-AW speedup scales with activation DBB
/// sparsity up to 8x.
#[test]
fn aw_speedup_series() {
    let dense = run_point(ArchKind::S2taAw, 0.5, 0.0, SEED).report.events.cycles as f64;
    for (sp, expect) in [(0.25, 8.0 / 6.0), (0.5, 2.0), (0.75, 4.0), (0.875, 8.0)] {
        let c = run_point(ArchKind::S2taAw, 0.5, sp, SEED).report.events.cycles as f64;
        let got = dense / c;
        assert!(
            (got - expect).abs() / expect < 0.12,
            "act sparsity {sp}: speedup {got:.2} vs paper {expect:.2}"
        );
    }
}

/// Fig. 9c: S2TA-W steps to 2x at >=50% weight sparsity and saturates.
#[test]
fn wdbb_speedup_step() {
    let dense = run_point(ArchKind::S2taW, 0.0, 0.5, SEED).report.events.cycles as f64;
    let at50 = run_point(ArchKind::S2taW, 0.5, 0.5, SEED).report.events.cycles as f64;
    let at875 = run_point(ArchKind::S2taW, 0.875, 0.5, SEED).report.events.cycles as f64;
    assert!((dense / at50 - 2.0).abs() < 0.2);
    assert!((at50 - at875).abs() / at50 < 0.02, "no speedup past the step");
}

/// Sec. 2 / Fig. 3: exploiting unstructured sparsity with FIFOs costs
/// more energy than simple clock gating, despite the speedup.
#[test]
fn smt_pays_for_its_fifos() {
    let tech = TechParams::tsmc16();
    let zvcg = run_point(ArchKind::SaZvcg, 0.5, 0.5, SEED);
    let smt = run_point(ArchKind::SaSmtT2Q2, 0.5, 0.5, SEED);
    let e_zvcg = EnergyBreakdown::of(&zvcg.report.events, &tech).total_pj();
    let e_smt = EnergyBreakdown::of(&smt.report.events, &tech).total_pj();
    assert!(e_smt / e_zvcg > 1.2, "SMT energy ratio {:.2}", e_smt / e_zvcg);
    assert!(
        zvcg.report.events.cycles as f64 / smt.report.events.cycles as f64 > 1.4,
        "SMT must still be faster"
    );
}

/// Summary point 2: ZVCG saves roughly a quarter of the dense SA's
/// energy at typical sparsity.
#[test]
fn zvcg_saves_vs_dense_sa() {
    let tech = TechParams::tsmc16();
    let sa = run_point(ArchKind::Sa, 0.5, 0.5, SEED);
    let zvcg = run_point(ArchKind::SaZvcg, 0.5, 0.5, SEED);
    let ratio = EnergyBreakdown::of(&sa.report.events, &tech).total_pj()
        / EnergyBreakdown::of(&zvcg.report.events, &tech).total_pj();
    assert!((1.15..1.45).contains(&ratio), "SA/ZVCG energy ratio {ratio:.2} (paper ~1.33)");
    assert_eq!(sa.report.events.cycles, zvcg.report.events.cycles, "ZVCG gives no speedup");
}

/// Abstract / Sec. 8: S2TA-AW delivers >2x energy reduction and ~2x+
/// speedup over SA-ZVCG on the microbenchmark operating point.
#[test]
fn aw_headline_gains() {
    let tech = TechParams::tsmc16();
    let zvcg = run_point(ArchKind::SaZvcg, 0.5, 0.625, SEED);
    let aw = run_point(ArchKind::S2taAw, 0.5, 0.625, SEED);
    let energy = EnergyBreakdown::of(&zvcg.report.events, &tech).total_pj()
        / EnergyBreakdown::of(&aw.report.events, &tech).total_pj();
    let speed = zvcg.report.events.cycles as f64 / aw.report.events.cycles as f64;
    assert!(energy > 2.0, "energy reduction {energy:.2} (paper ~2.2x at this point)");
    assert!((speed - 8.0 / 3.0).abs() < 0.3, "speedup {speed:.2} (paper 2.7x)");
}

/// Table 1: the buffer-per-MAC ordering that motivates the whole paper.
#[test]
fn buffer_ordering() {
    let total = |k| BufferPerMac::of(&ArchConfig::preset(k)).total_bytes();
    assert!(total(ArchKind::SaSmtT2Q4) > total(ArchKind::SaSmtT2Q2));
    assert!(total(ArchKind::SaSmtT2Q2) > total(ArchKind::Sa));
    assert!(total(ArchKind::Sa) > total(ArchKind::S2taAw));
    assert!(total(ArchKind::S2taAw) > total(ArchKind::S2taW));
}

/// Fig. 11 (AlexNet column, conv only): S2TA-AW beats SA-ZVCG on energy
/// by well over 1.5x, and S2TA-W alone by a clear margin.
#[test]
fn alexnet_conv_energy_ordering() {
    let tech = TechParams::tsmc16();
    let model = alexnet();
    let zvcg = Accelerator::preset(ArchKind::SaZvcg).run_model_conv_only(&model, SEED);
    let w = Accelerator::preset(ArchKind::S2taW).run_model_conv_only(&model, SEED);
    let aw = Accelerator::preset(ArchKind::S2taAw).run_model_conv_only(&model, SEED);
    let aw_red = aw.energy_reduction_vs(&zvcg, &tech);
    let w_red = w.energy_reduction_vs(&zvcg, &tech);
    assert!(aw_red > 1.5, "AW vs ZVCG {aw_red:.2} (paper ~2x)");
    assert!(w_red > 1.0 && w_red < aw_red, "W vs ZVCG {w_red:.2} (paper ~1.13x, below AW)");
}

/// Sec. 3.2 / Table 4: peak effective throughput doubles with 4/8
/// weights (S2TA-W) and reaches 4x at 2/8 activations (S2TA-AW).
#[test]
fn peak_throughput_scaling() {
    let w = ArchConfig::preset(ArchKind::S2taW);
    let aw = ArchConfig::preset(ArchKind::S2taAw);
    let dense = ArchConfig::preset(ArchKind::SaZvcg).peak_dense_tops(1e9);
    assert!((w.peak_effective_tops(1e9, 8) / dense - 2.0).abs() < 1e-9);
    assert!((aw.peak_effective_tops(1e9, 2) / dense - 4.0).abs() < 1e-9);
    assert!((aw.peak_effective_tops(1e9, 1) / dense - 8.0).abs() < 1e-9);
}
