//! Cross-crate cluster tests: router conservation invariants,
//! single-shard degeneration to a bare fleet, determinism of sharded
//! runs, merged-percentile rollup, and lane autoscaling.

use proptest::{prop_assert, prop_assert_eq};
use s2ta::core::pool::Executor;
use s2ta::core::ArchKind;
use s2ta::energy::TechParams;
use s2ta::models::{lenet5, ModelSpec};
use s2ta::serve::{
    AutoscalePolicy, Cluster, DiurnalSpec, FaultConfig, FaultSpec, FixedPolicy, Fleet, FleetSpec,
    RateSegment, Request, RoutingPolicy, TraceConfig, TraceEventKind, WorkloadSpec,
};
use std::collections::HashMap;

fn models() -> Vec<ModelSpec> {
    vec![lenet5()]
}

fn stream(seed: u64, n: usize) -> Vec<Request> {
    WorkloadSpec::uniform(seed, n, 2_000.0, 1).generate()
}

fn shards(count: usize, lanes: usize) -> Vec<Fleet> {
    (0..count).map(|_| Fleet::new(ArchKind::S2taAw, lanes)).collect()
}

/// Every input request must land on exactly one shard — no loss, no
/// duplication — under every routing policy, and the router's own
/// per-shard tallies must agree with the shard reports.
#[test]
fn router_conserves_requests_under_every_policy() {
    let models = models();
    let requests = stream(5, 200);
    for routing in
        [RoutingPolicy::Random, RoutingPolicy::JoinShortestQueue, RoutingPolicy::PowerOfTwo]
    {
        let report = Cluster::new(shards(3, 2))
            .with_routing(routing)
            .with_router_seed(11)
            .serve(&models, &requests);
        assert_eq!(report.total_requests(), 200, "{routing:?}");
        assert_eq!(report.routed.iter().sum::<usize>(), 200, "{routing:?}");
        let mut ids: Vec<u64> =
            report.shards.iter().flat_map(|s| s.outcomes.iter().map(|o| o.id())).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..200).collect::<Vec<u64>>(),
            "{routing:?}: every id exactly once across shards"
        );
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.outcomes.len(), report.routed[i], "{routing:?} shard {i} tally");
        }
    }
}

/// Conservation must survive admission drops: a bounded shard queue
/// tail-drops requests, but every id still appears exactly once in the
/// union of served + dropped outcomes.
#[test]
fn conservation_holds_under_admission_drops() {
    let models = models();
    // A hot stream against queues bounded below `max_batch` forces
    // drops: each shard's queue fills long before the timeout can
    // close a batch (~250-cycle global gaps → ~500 per shard).
    let requests = WorkloadSpec::uniform(9, 300, 250.0, 1).generate();
    let fleets = (0..2)
        .map(|_| {
            Fleet::new(ArchKind::S2taAw, 2)
                .with_policy(FixedPolicy { max_batch: 8, max_wait_cycles: 10_000 })
                .with_queue_capacity(3)
        })
        .collect();
    let report =
        Cluster::new(fleets).with_routing(RoutingPolicy::PowerOfTwo).serve(&models, &requests);
    assert!(report.dropped_count() > 0, "scenario must actually drop");
    assert!(report.served_count() > 0);
    assert_eq!(report.served_count() + report.dropped_count(), 300);
    let mut ids: Vec<u64> =
        report.shards.iter().flat_map(|s| s.outcomes.iter().map(|o| o.id())).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..300).collect::<Vec<u64>>());
    assert!(report.drop_rate() > 0.0 && report.drop_rate() < 1.0);
}

/// A single-shard cluster is the degenerate case: whatever the routing
/// policy, every request goes to shard 0, and the shard's report must
/// be **identical** to serving the same stream on the bare fleet.
#[test]
fn single_shard_cluster_matches_bare_fleet_exactly() {
    let models = models();
    let requests = stream(13, 150);
    let bare = Fleet::new(ArchKind::S2taAw, 3).serve(&models, &requests);
    for routing in
        [RoutingPolicy::Random, RoutingPolicy::JoinShortestQueue, RoutingPolicy::PowerOfTwo]
    {
        let cluster = Cluster::new(shards(1, 3)).with_routing(routing).serve(&models, &requests);
        assert_eq!(cluster.shards.len(), 1);
        assert_eq!(
            cluster.shards[0], bare,
            "{routing:?}: routing through a 1-shard cluster must not perturb the simulation"
        );
        assert_eq!(cluster.p99_cycles(), bare.p99_cycles());
        assert_eq!(cluster.makespan_cycles(), bare.makespan_cycles);
    }
}

/// The same cluster spec must reproduce the identical report, and the
/// router seed is the only randomness: a different seed reroutes a
/// random-policy run.
#[test]
fn cluster_runs_are_deterministic_in_the_router_seed() {
    let models = models();
    let requests = stream(21, 180);
    let run = |seed: u64| {
        Cluster::new(shards(4, 1))
            .with_routing(RoutingPolicy::Random)
            .with_router_seed(seed)
            .serve(&models, &requests)
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a, b, "same seed must reproduce the identical cluster report");
    let c = run(4);
    assert_ne!(a.routed, c.routed, "a different router seed must reroute");
    // JSQ consumes no randomness, so its runs ignore the seed entirely.
    let jsq = |seed: u64| {
        Cluster::new(shards(4, 1))
            .with_routing(RoutingPolicy::JoinShortestQueue)
            .with_router_seed(seed)
            .serve(&models, &requests)
    };
    assert_eq!(jsq(3), jsq(999));
}

/// Global percentiles are taken over the merged per-request samples:
/// the cluster p99 must be a latency some shard actually observed, and
/// must sit within the range of per-shard extremes (an averaged
/// percentile generally is neither).
#[test]
fn global_percentiles_come_from_merged_samples() {
    let models = models();
    let requests = stream(31, 240);
    let report = Cluster::new(shards(3, 2))
        .with_routing(RoutingPolicy::PowerOfTwo)
        .serve(&models, &requests);
    let mut all: Vec<u64> = report
        .shards
        .iter()
        .flat_map(|s| s.served_outcomes().map(|r| r.latency_cycles()))
        .collect();
    all.sort_unstable();
    for pct in [50.0, 95.0, 99.0] {
        let global = report.latency_percentile_cycles(pct);
        assert!(all.contains(&global), "p{pct} {global} is not an observed sample");
    }
    assert!(report.p50_cycles() <= report.p95_cycles());
    assert!(report.p95_cycles() <= report.p99_cycles());
    assert!(report.goodput_ips(&TechParams::tsmc16()) > 0.0);
}

/// On a diurnal profile the autoscaler must both grow lanes into the
/// peak and shed them in the valley, and scaling must not break
/// request conservation.
#[test]
fn autoscaler_tracks_the_diurnal_load_curve() {
    let models = models();
    // Two full day cycles: shards start at full width, shed lanes
    // through the first valley, and must re-grow into the second peak.
    let requests = DiurnalSpec {
        seed: 17,
        requests: 620,
        segments: vec![
            RateSegment { duration_cycles: 60_000, mean_interarrival_cycles: 200.0 },
            RateSegment { duration_cycles: 240_000, mean_interarrival_cycles: 24_000.0 },
        ],
        mix: vec![1.0],
        act_seed_pool: 32,
    }
    .generate();
    let fleets = (0..2)
        .map(|_| {
            Fleet::from_spec(FleetSpec::homogeneous(ArchKind::S2taAw, 4))
                .with_policy(FixedPolicy { max_batch: 16, max_wait_cycles: 30_000 })
        })
        .collect();
    let report = Cluster::new(fleets)
        .with_routing(RoutingPolicy::PowerOfTwo)
        .with_autoscale(AutoscalePolicy {
            eval_interval_cycles: 15_000,
            scale_up_depth: 3,
            scale_down_depth: 0,
            min_lanes: 1,
        })
        .serve(&models, &requests);
    assert_eq!(report.total_requests(), 620);
    let ups = report.scale_events.iter().filter(|e| e.to_lanes > e.from_lanes).count();
    let downs = report.scale_events.iter().filter(|e| e.to_lanes < e.from_lanes).count();
    assert!(ups > 0, "peak load must trigger scale-ups: {:?}", report.scale_events);
    assert!(downs > 0, "valley must trigger scale-downs: {:?}", report.scale_events);
    for e in &report.scale_events {
        assert!(e.to_lanes >= 1 && e.to_lanes <= 4, "lane count out of bounds: {e:?}");
        assert_eq!(e.to_lanes.abs_diff(e.from_lanes), 1, "scaling moves one lane at a time");
    }
    // Events are in simulated-time order.
    for w in report.scale_events.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
    let mut ids: Vec<u64> =
        report.shards.iter().flat_map(|s| s.outcomes.iter().map(|o| o.id())).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..620).collect::<Vec<u64>>());
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(5))]

    /// The shard-parallel drivers (pre-routed tier for `Random`, arrival-
    /// barrier tier for the backlog-probing policies) must reproduce the
    /// serial driver **byte-identically** — full `ClusterReport` equality,
    /// covering outcomes, routed tallies, per-shard reports, and scale
    /// events — across routing policies, shard counts, and executor worker
    /// counts (including a serial 1-worker executor and the global pool).
    #[test]
    fn prop_parallel_cluster_is_byte_identical_to_serial(
        seed in 1u64..1_000,
        n in 60usize..110,
        policy_idx in 0usize..3,
        autoscale in proptest::arbitrary::any::<bool>(),
    ) {
        let models = models();
        let requests = stream(seed, n);
        let routing = [
            RoutingPolicy::Random,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::PowerOfTwo,
        ][policy_idx];
        for shard_count in [1usize, 2, 4] {
            let mut cluster = Cluster::new(shards(shard_count, 2))
                .with_routing(routing)
                .with_router_seed(seed ^ 0x5eed);
            if autoscale {
                cluster = cluster.with_autoscale(AutoscalePolicy {
                    eval_interval_cycles: 20_000,
                    scale_up_depth: 2,
                    scale_down_depth: 0,
                    min_lanes: 1,
                });
            }
            let serial = cluster.serve_serial(&models, &requests);
            for workers in [Some(1usize), Some(2), Some(7), None] {
                let parallel = match workers {
                    Some(w) => cluster.serve_on(&Executor::new(w), &models, &requests),
                    None => cluster.serve(&models, &requests),
                };
                prop_assert_eq!(
                    &parallel,
                    &serial,
                    "policy {:?}, {} shards, workers {:?}",
                    routing,
                    shard_count,
                    workers
                );
                prop_assert_eq!(&parallel.scale_events, &serial.scale_events);
                prop_assert_eq!(&parallel.routed, &serial.routed);
            }
        }
    }
}

/// A chaos schedule dense enough to guarantee crash, slowdown and
/// outage activity inside the arrival span.
fn chaos_spec(seed: u64, horizon: u64) -> FaultSpec {
    FaultSpec {
        seed,
        lane_crashes: 3,
        lane_slowdowns: 2,
        shard_outages: 1,
        horizon_cycles: horizon.max(1),
        mean_down_cycles: horizon / 8 + 1,
        mean_outage_cycles: 0,
        slowdown_factor: 3,
    }
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(4))]

    /// Chaos property: under random seeded fault schedules, every
    /// routing policy and shard count must (a) conserve requests —
    /// served + dropped + failed covers the offered stream exactly
    /// once, (b) never execute a served batch inside its lane's crash
    /// window, and (c) stay byte-identical between the serial and
    /// shard-parallel drivers, **including the merged trace**.
    #[test]
    fn prop_chaos_conserves_and_stays_byte_identical(
        seed in 1u64..500,
        fault_seed in 1u64..500,
        policy_idx in 0usize..3,
    ) {
        let models = models();
        let requests = stream(seed, 80);
        let offered = requests.len();
        let horizon = requests.last().map_or(1, |r| r.arrival.max(1));
        let routing = [
            RoutingPolicy::Random,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::PowerOfTwo,
        ][policy_idx];
        for shard_count in [1usize, 2, 4] {
            let config = FaultConfig::protected(chaos_spec(fault_seed, horizon));
            let cluster = Cluster::new(shards(shard_count, 2))
                .with_routing(routing)
                .with_router_seed(seed ^ 0xc4a05)
                .with_trace(TraceConfig::default())
                .with_faults(config.clone());
            let serial = cluster.serve_serial(&models, &requests);

            // (a) Conservation, by count and by id.
            prop_assert_eq!(
                serial.served_count() + serial.dropped_count() + serial.failed_count(),
                offered,
                "{:?} x{}: served+dropped+failed must cover the stream",
                routing, shard_count
            );
            let mut ids: Vec<u64> = serial
                .shards
                .iter()
                .flat_map(|s| s.outcomes.iter().map(|o| o.id()))
                .collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..offered as u64).collect::<Vec<u64>>());
            prop_assert!(serial.fault_stats().lane_crashes > 0, "schedule must crash");
            prop_assert!(serial.availability() > 0.0 && serial.availability() <= 1.0);

            // (b) No served batch executes inside its lane's crash
            // window (windows recomputed from the pure schedule).
            let plan = config.spec.schedule(&vec![2usize; shard_count]);
            let trace = serial.merged_trace().expect("every shard is traced");
            let mut starts: HashMap<(u32, u32, u64), u64> = HashMap::new();
            for e in trace.events() {
                match e.kind {
                    TraceEventKind::BatchStarted => {
                        starts.insert((e.shard, e.lane, e.a), e.cycle);
                    }
                    TraceEventKind::BatchCompleted => {
                        let start = starts[&(e.shard, e.lane, e.a)];
                        let timeline = plan.shard_timeline(e.shard as usize);
                        for &(ws, we) in timeline.lane_down_windows(e.lane as usize) {
                            prop_assert!(
                                !(start < we && ws < e.cycle),
                                "batch [{start}, {}) on shard {} lane {} overlaps \
                                 crash window [{ws}, {we})",
                                e.cycle, e.shard, e.lane
                            );
                        }
                    }
                    _ => {}
                }
            }

            // (c) Serial vs shard-parallel byte-identity, merged trace
            // included.
            for workers in [Some(1usize), Some(3), None] {
                let parallel = match workers {
                    Some(w) => cluster.serve_on(&Executor::new(w), &models, &requests),
                    None => cluster.serve(&models, &requests),
                };
                prop_assert_eq!(
                    &parallel, &serial,
                    "{:?} x{} workers {:?}", routing, shard_count, workers
                );
                let parallel_trace = parallel.merged_trace().expect("traced");
                prop_assert_eq!(
                    parallel_trace.events(),
                    trace.events(),
                    "merged traces must be byte-identical"
                );
            }
        }
    }
}

/// Deterministic autoscale differential: on the diurnal scenario the
/// serial and parallel drivers must emit the identical (non-empty)
/// scale-event log, at every worker count, for a backlog-probing
/// policy — the hardest case, since autoscale evals interleave with
/// the arrival barrier.
#[test]
fn parallel_driver_reproduces_serial_autoscale_run() {
    let models = models();
    let requests = DiurnalSpec {
        seed: 17,
        requests: 620,
        segments: vec![
            RateSegment { duration_cycles: 60_000, mean_interarrival_cycles: 200.0 },
            RateSegment { duration_cycles: 240_000, mean_interarrival_cycles: 24_000.0 },
        ],
        mix: vec![1.0],
        act_seed_pool: 32,
    }
    .generate();
    let build = || {
        let fleets = (0..2)
            .map(|_| {
                Fleet::from_spec(FleetSpec::homogeneous(ArchKind::S2taAw, 4))
                    .with_policy(FixedPolicy { max_batch: 16, max_wait_cycles: 30_000 })
            })
            .collect();
        Cluster::new(fleets).with_routing(RoutingPolicy::PowerOfTwo).with_autoscale(
            AutoscalePolicy {
                eval_interval_cycles: 15_000,
                scale_up_depth: 3,
                scale_down_depth: 0,
                min_lanes: 1,
            },
        )
    };
    let serial = build().serve_serial(&models, &requests);
    assert!(!serial.scale_events.is_empty(), "scenario must actually scale");
    for workers in [1usize, 2, 7] {
        let parallel = build().serve_on(&Executor::new(workers), &models, &requests);
        assert_eq!(parallel, serial, "{workers} workers");
    }
    assert_eq!(build().serve(&models, &requests), serial, "global executor");
}
