//! End-to-end integration: convolution lowering -> DBB toolchain ->
//! simulated datapaths -> energy model, across crate boundaries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta::core::{Accelerator, ArchKind};
use s2ta::dbb::dap::{dap_matrix, LayerNnz};
use s2ta::dbb::{prune, DbbConfig};
use s2ta::energy::{EnergyBreakdown, TechParams};
use s2ta::models::lenet5;
use s2ta::sim::smt::SmtConfig;
use s2ta::sim::{smt, systolic, tpe, ArrayGeometry};
use s2ta::tensor::sparsity::SparseSpec;
use s2ta::tensor::{conv_ref, gemm_ref, im2col, ConvShape};

/// A convolution pushed through the full S2TA-AW path — im2col
/// lowering, W-DBB pruning, DAP, time-unrolled execution — must equal
/// the direct reference convolution of the pruned tensors.
#[test]
fn conv_through_s2ta_aw_is_bit_exact() {
    let shape = ConvShape::new(6, 16, 8, 8, 3, 3, 1, 1);
    let mut rng = StdRng::seed_from_u64(1);
    let w_raw = SparseSpec::random(0.3).tensor(shape.weight_dims(), &mut rng);
    let x = SparseSpec::random(0.4).tensor(shape.input_dims(), &mut rng);

    let w_matrix = shape.weights_as_matrix(&w_raw);
    let a_matrix = im2col(&shape, &x);

    let wdbb = prune::prune_and_compress(&w_matrix, DbbConfig::new(4, 8));
    let (adbb, _) = dap_matrix(&a_matrix, 8, LayerNnz::Prune(3));

    let geom = ArrayGeometry::new(2, 4, 2, 2, 2, 8);
    let run = tpe::run_aw(&geom, &wdbb, &adbb);
    let expected = gemm_ref(&wdbb.decompress(), &adbb.decompress());
    assert_eq!(run.result, expected);
}

/// Direct convolution and the im2col-lowered dense systolic run agree.
#[test]
fn conv_through_dense_sa_matches_direct() {
    let shape = ConvShape::new(4, 8, 6, 6, 3, 3, 2, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let w = SparseSpec::random(0.5).tensor(shape.weight_dims(), &mut rng);
    let x = SparseSpec::random(0.5).tensor(shape.input_dims(), &mut rng);
    let run = systolic::run(
        &ArrayGeometry::scalar(4, 4),
        true,
        &shape.weights_as_matrix(&w),
        &im2col(&shape, &x),
    );
    assert_eq!(run.result, conv_ref(&shape, &w, &x));
}

/// All functional datapaths compute the same GEMM (on operands that
/// satisfy the DBB bounds, so no pruning differences intrude).
#[test]
fn all_datapaths_agree_on_bounded_operands() {
    let mut rng = StdRng::seed_from_u64(3);
    let w_raw = SparseSpec::random(0.6).matrix(8, 32, &mut rng);
    let w = prune::prune_matrix(&w_raw, s2ta::dbb::BlockAxis::Rows, DbbConfig::new(4, 8));
    let a_raw = SparseSpec::random(0.7).matrix(32, 6, &mut rng);
    let (adbb, _) = dap_matrix(&a_raw, 8, LayerNnz::Prune(2));
    let a = adbb.decompress();
    let reference = gemm_ref(&w, &a);

    let sa = systolic::run(&ArrayGeometry::scalar(4, 4), false, &w, &a);
    assert_eq!(sa.result, reference, "dense SA");
    let zvcg = systolic::run(&ArrayGeometry::scalar(4, 4), true, &w, &a);
    assert_eq!(zvcg.result, reference, "SA-ZVCG");
    let smt_run = smt::run(&ArrayGeometry::scalar(4, 4), SmtConfig::t2q2(), &w, &a);
    assert_eq!(smt_run.result, reference, "SA-SMT");

    let geom = ArrayGeometry::new(2, 4, 2, 2, 2, 8);
    let wdbb = prune::prune_and_compress(&w, DbbConfig::new(4, 8));
    let wrun = tpe::run_wdbb(&geom, &wdbb, &a);
    assert_eq!(wrun.result, reference, "S2TA-W");
    let awrun = tpe::run_aw(&geom, &wdbb, &adbb);
    assert_eq!(awrun.result, reference, "S2TA-AW");
}

/// Whole-model run: S2TA-AW must beat SA-ZVCG on both time and energy
/// for a small CNN, and runs must be deterministic.
#[test]
fn lenet_model_scoreboard() {
    let model = lenet5();
    let tech = TechParams::tsmc16();
    let zvcg = Accelerator::preset(ArchKind::SaZvcg).run_model(&model, 9);
    let aw = Accelerator::preset(ArchKind::S2taAw).run_model(&model, 9);
    assert!(aw.speedup_vs(&zvcg) > 1.0, "AW speedup {:.2}", aw.speedup_vs(&zvcg));
    assert!(
        aw.energy_reduction_vs(&zvcg, &tech) > 1.0,
        "AW energy reduction {:.2}",
        aw.energy_reduction_vs(&zvcg, &tech)
    );
    // Determinism across identical runs.
    let aw2 = Accelerator::preset(ArchKind::S2taAw).run_model(&model, 9);
    assert_eq!(aw, aw2);
}

/// Every architecture produces internally consistent event counts on a
/// real layer: issued MACs bounded by cycles x hardware MACs, SRAM
/// traffic non-zero, energy strictly positive.
#[test]
fn event_count_invariants_hold_per_arch() {
    let model = lenet5();
    let layer = &model.layers[1]; // conv2
    let tech = TechParams::tsmc16();
    for kind in ArchKind::ALL {
        let acc = Accelerator::preset(kind);
        let r = acc.run_layer(layer, 1, 4);
        let ev = &r.events;
        assert!(ev.cycles > 0, "{kind}: no cycles");
        assert!(
            ev.macs_issued() <= ev.cycles * 2048,
            "{kind}: issued {} exceeds capacity {}",
            ev.macs_issued(),
            ev.cycles * 2048
        );
        assert!(ev.weight_sram_bytes > 0 && ev.act_sram_read_bytes > 0, "{kind}: no SRAM traffic");
        assert_eq!(ev.mcu_elements, (layer.gemm.m * layer.gemm.n) as u64, "{kind}: MCU elements");
        let e = EnergyBreakdown::of(ev, &tech);
        assert!(e.total_pj() > 0.0, "{kind}: zero energy");
    }
}

/// The memory-bound clamp engages on FC layers and still rewards
/// compression: S2TA-AW's FC latency beats SA-ZVCG's via bandwidth.
#[test]
fn fc_layers_are_memory_bound_but_compressible() {
    let model = lenet5();
    let fc = model.layers.iter().position(|l| l.name == "fc3").expect("fc3 exists");
    let zvcg = Accelerator::preset(ArchKind::SaZvcg).run_layer(&model.layers[fc], fc, 4);
    let aw = Accelerator::preset(ArchKind::S2taAw).run_layer(&model.layers[fc], fc, 4);
    assert!(
        aw.events.cycles < zvcg.events.cycles,
        "compressed weights should cut the DMA-bound latency: {} vs {}",
        aw.events.cycles,
        zvcg.events.cycles
    );
}
