//! Cross-crate observability tests: flight-recorder determinism,
//! equality-neutrality of an attached recorder (no report byte
//! changes), drop-oldest ring overflow at the trace level, per-model
//! drop / deadline-miss accounting on a bounded queue, and
//! serial-vs-parallel merged-trace identity for the cluster tier.

use proptest::prop_assert_eq;
use s2ta::core::pool::Executor;
use s2ta::core::ArchKind;
use s2ta::energy::TechParams;
use s2ta::models::{lenet5, ModelSpec};
use s2ta::serve::{
    AutoscalePolicy, Cluster, FixedPolicy, Fleet, Request, RoutingPolicy, TraceConfig,
    TraceEventKind, WorkloadSpec,
};

fn models() -> Vec<ModelSpec> {
    vec![lenet5()]
}

fn stream(seed: u64, n: usize) -> Vec<Request> {
    WorkloadSpec::uniform(seed, n, 2_000.0, 1).generate()
}

fn big_trace() -> TraceConfig {
    TraceConfig { event_capacity: 1 << 16, metrics_interval_cycles: 5_000 }
}

/// The same traced scenario run twice must reproduce the trace exactly
/// — events, metrics samples, p99 series — and the exported artifacts
/// byte-for-byte (host-side halves excluded from equality, but the
/// deterministic JSON content compared here is the equality-carrying
/// part serialized the same way).
#[test]
fn same_scenario_twice_reproduces_the_trace() {
    let models = s2ta_bench::hetero_scenario::models();
    let mut spec = s2ta_bench::hetero_scenario::workload();
    spec.requests = 400;
    let requests = spec.generate();
    let run = || {
        Fleet::from_spec(s2ta_bench::hetero_scenario::fleet_spec())
            .with_policy(s2ta_bench::hetero_scenario::policy())
            .with_trace(big_trace())
            .serve(&models, &requests)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "traced runs must stay deterministic");
    let (ta, tb) = (a.trace().expect("recorder attached"), b.trace().expect("recorder attached"));
    assert_eq!(ta, tb, "the recorded trace must be a pure function of the run");
    assert!(!ta.events().is_empty());
    assert!(!ta.metrics().is_empty());
    assert_eq!(ta.dropped_events(), 0, "capacity must hold this scenario");
    assert_eq!(ta.completed_requests(), a.served_count() as u64, "conservation law");
}

/// Attaching a recorder must change **no byte** of the simulated
/// result: full report equality against the untraced run (which takes
/// the vectorized fast path) on the heterogeneous and pipelined golden
/// scenarios, including the per-model drop/miss table and the rendered
/// breakdowns.
#[test]
fn recorder_is_equality_neutral_on_golden_scenarios() {
    let tech = TechParams::tsmc16();
    {
        let models = s2ta_bench::hetero_scenario::models();
        let mut spec = s2ta_bench::hetero_scenario::workload();
        spec.requests = 300;
        let requests = spec.generate();
        let fleet = Fleet::from_spec(s2ta_bench::hetero_scenario::fleet_spec())
            .with_policy(s2ta_bench::hetero_scenario::policy());
        let untraced = fleet.serve(&models, &requests);
        let traced = fleet.clone().with_trace(big_trace()).serve(&models, &requests);
        assert!(untraced.trace().is_none());
        assert!(traced.trace().is_some());
        assert_eq!(untraced, traced, "hetero: recorder must be observability only");
        assert_eq!(untraced.per_model, traced.per_model);
        assert_eq!(untraced.lane_breakdown(&tech), traced.lane_breakdown(&tech));
    }
    {
        let models = s2ta_bench::pipeline_scenario::models();
        let mut spec = s2ta_bench::pipeline_scenario::workload();
        spec.requests = 60;
        let requests = spec.generate();
        let untraced = s2ta_bench::pipeline_scenario::pipelined_fleet().serve(&models, &requests);
        let traced = s2ta_bench::pipeline_scenario::pipelined_fleet()
            .with_trace(big_trace())
            .serve(&models, &requests);
        assert_eq!(untraced, traced, "pipelined: recorder must be observability only");
        assert_eq!(untraced.pipeline_breakdown(), traced.pipeline_breakdown());
        let stage_events = traced
            .trace()
            .expect("recorder attached")
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::StageDispatch)
            .count();
        assert!(stage_events > 0, "pipelined dispatch must record stage events");
    }
}

/// Drop-oldest overflow at the trace level: a tiny ring retains
/// exactly the **newest** events of the full stream (the suffix a
/// full-capacity run records), a zero-capacity ring retains nothing,
/// and both count every overwritten event.
#[test]
fn trace_ring_overflow_drops_oldest() {
    let models = models();
    let requests = stream(7, 120);
    let run = |capacity: usize| {
        Fleet::new(ArchKind::S2taAw, 2)
            .with_trace(TraceConfig { event_capacity: capacity, metrics_interval_cycles: 10_000 })
            .serve(&models, &requests)
    };
    let full = run(1 << 16);
    let full_trace = full.trace().unwrap();
    assert_eq!(full_trace.dropped_events(), 0);
    let total = full_trace.events().len();
    assert!(total > 8, "scenario must record enough events to overflow");

    for capacity in [0usize, 1, 5, total, total + 9] {
        let small = run(capacity);
        let trace = small.trace().unwrap();
        let kept = total.min(capacity);
        assert_eq!(trace.events().len(), kept, "capacity {capacity}");
        assert_eq!(trace.dropped_events(), (total - kept) as u64, "capacity {capacity}");
        // Drop-oldest: what survives is exactly the tail of the full
        // stream.
        assert_eq!(trace.events(), &full_trace.events()[total - kept..], "capacity {capacity}");
        assert_eq!(small, full, "ring capacity must not perturb the simulation");
    }
}

/// The satellite regression for per-model serving stats: a capacity-1
/// bounded queue under a hot stream must tail-drop, the per-model
/// drop tallies must sum to the report's dropped count, deadline
/// misses must be attributed, and — because `per_model` participates
/// in report equality — the engine (traced) and vectorized (untraced)
/// paths must agree on every tally.
#[test]
fn per_model_drops_and_deadline_misses_on_a_capacity_one_queue() {
    let models = models();
    // ~250-cycle gaps against a capacity-1 queue and a long batching
    // window: the queue refuses most arrivals, and the batches that do
    // form seal by timeout (deadline misses), not by size.
    let requests = WorkloadSpec::uniform(11, 200, 250.0, 1).generate();
    let fleet = Fleet::new(ArchKind::S2taAw, 1)
        .with_policy(FixedPolicy { max_batch: 64, max_wait_cycles: 40_000 })
        .with_queue_capacity(1);
    let untraced = fleet.serve(&models, &requests);
    let traced = fleet.clone().with_trace(big_trace()).serve(&models, &requests);
    assert_eq!(untraced, traced, "per-model stats must agree across engine/vectorized paths");

    assert!(untraced.dropped_count() > 0, "capacity-1 queue must drop");
    assert!(untraced.deadline_miss_count() > 0, "timeout-sealed batches must count as misses");
    let dropped: u64 = untraced.per_model.iter().map(|m| m.dropped).sum();
    assert_eq!(dropped, untraced.dropped_count() as u64);
    let missed: u64 = untraced.per_model.iter().map(|m| m.deadline_misses).sum();
    assert_eq!(missed, untraced.deadline_miss_count());
    assert_eq!(untraced.per_model.len(), 1);
    assert_eq!(untraced.per_model[0].model, "LeNet-5");

    // The retained events corroborate the report tallies (nothing was
    // overwritten, so the ring holds the whole run).
    let trace = traced.trace().unwrap();
    assert_eq!(trace.dropped_events(), 0);
    assert_eq!(trace.dropped_requests(), untraced.dropped_count() as u64);
    let miss_events: u64 =
        trace.events().iter().filter(|e| e.kind == TraceEventKind::DeadlineMiss).map(|e| e.a).sum();
    assert_eq!(miss_events, untraced.deadline_miss_count());
    assert_eq!(trace.completed_requests(), untraced.served_count() as u64);
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(5))]

    /// The tentpole invariant at cluster scale: with a recorder
    /// attached, the serial reference driver and the shard-parallel
    /// drivers must produce **byte-identical merged traces** — events,
    /// metrics samples, per-model series — across routing policies,
    /// shard counts, worker counts, and autoscale on/off, exactly like
    /// the report-equality property the cluster already pins.
    #[test]
    fn prop_cluster_trace_is_identical_serial_vs_parallel(
        seed in 1u64..1_000,
        n in 60usize..110,
        policy_idx in 0usize..3,
        autoscale in proptest::arbitrary::any::<bool>(),
    ) {
        let models = models();
        let requests = stream(seed, n);
        let routing = [
            RoutingPolicy::Random,
            RoutingPolicy::JoinShortestQueue,
            RoutingPolicy::PowerOfTwo,
        ][policy_idx];
        for shard_count in [1usize, 2, 4] {
            let fleets = (0..shard_count).map(|_| Fleet::new(ArchKind::S2taAw, 2)).collect();
            let mut cluster = Cluster::new(fleets)
                .with_routing(routing)
                .with_router_seed(seed ^ 0x5eed)
                .with_trace(TraceConfig {
                    event_capacity: 1 << 14,
                    metrics_interval_cycles: 7_000,
                });
            if autoscale {
                cluster = cluster.with_autoscale(AutoscalePolicy {
                    eval_interval_cycles: 20_000,
                    scale_up_depth: 2,
                    scale_down_depth: 0,
                    min_lanes: 1,
                });
            }
            let serial = cluster.serve_serial(&models, &requests);
            let serial_trace = serial.merged_trace().expect("recorder attached");
            for workers in [Some(2usize), None] {
                let parallel = match workers {
                    Some(w) => cluster.serve_on(&Executor::new(w), &models, &requests),
                    None => cluster.serve(&models, &requests),
                };
                prop_assert_eq!(&parallel, &serial,
                    "policy {:?}, {} shards, workers {:?}", routing, shard_count, workers);
                let parallel_trace = parallel.merged_trace().expect("recorder attached");
                prop_assert_eq!(&parallel_trace, &serial_trace,
                    "trace: policy {:?}, {} shards, workers {:?}", routing, shard_count, workers);
            }
        }
    }
}

/// Cluster per-model rollup: shard tallies aggregate index-wise, and
/// the merged trace's request-drop events corroborate the router-level
/// drop count when nothing overflowed the rings.
#[test]
fn cluster_per_model_rollup_matches_shard_reports() {
    let models = models();
    let requests = WorkloadSpec::uniform(9, 300, 250.0, 1).generate();
    let fleets = (0..2)
        .map(|_| {
            Fleet::new(ArchKind::S2taAw, 2)
                .with_policy(FixedPolicy { max_batch: 8, max_wait_cycles: 10_000 })
                .with_queue_capacity(3)
        })
        .collect();
    let report = Cluster::new(fleets)
        .with_routing(RoutingPolicy::PowerOfTwo)
        .with_trace(big_trace())
        .serve(&models, &requests);
    assert!(report.dropped_count() > 0, "scenario must actually drop");
    let rollup = report.per_model();
    assert_eq!(rollup.len(), 1);
    assert_eq!(rollup[0].dropped, report.dropped_count() as u64);
    let per_shard: u64 =
        report.shards.iter().flat_map(|s| s.per_model.iter().map(|m| m.deadline_misses)).sum();
    assert_eq!(rollup[0].deadline_misses, per_shard);
    let trace = report.merged_trace().expect("recorder attached");
    assert_eq!(trace.dropped_events(), 0);
    assert_eq!(trace.dropped_requests(), report.dropped_count() as u64);
    assert_eq!(trace.completed_requests(), report.served_count() as u64);
}
