//! Cross-crate serving tests: scheduler invariants, end-to-end
//! determinism of the fleet across client modes, admission control,
//! SLO-aware batching (global and per-model classes), heterogeneous
//! lane fleets with affinity-aware placement, and bit-exactness of the
//! cached weight plans against the uncached path.

use proptest::prelude::*;
use s2ta::core::{Accelerator, ArchKind, ModelReport, WeightResidency};
use s2ta::energy::TechParams;
use s2ta::models::{cifar10_convnet, lenet5, LayerSpec, ModelSpec};
use s2ta::serve::{
    Batch, BatchLimits, ClosedLoopSpec, FixedPolicy, Fleet, FleetSpec, PlacementStrategy, Request,
    Scheduler, SloAwarePolicy, SloClass, WorkloadSpec,
};
use s2ta::tensor::{GemmShape, LayerKind};

fn workload(seed: u64, n: usize, models: usize) -> Vec<Request> {
    WorkloadSpec::uniform(seed, n, 15_000.0, models).generate()
}

/// A second, structurally different model so multi-model scheduling is
/// exercised without the cost of a full zoo network.
fn tiny_net() -> ModelSpec {
    ModelSpec {
        name: "TinyNet",
        layers: vec![
            LayerSpec::new("conv1", LayerKind::Conv, GemmShape::new(8, 27, 196), 0.1, 0.05),
            LayerSpec::new("conv2", LayerKind::Conv, GemmShape::new(16, 72, 49), 0.5, 0.5),
            LayerSpec::new("fc", LayerKind::FullyConnected, GemmShape::new(10, 784, 1), 0.5, 0.7),
        ],
    }
}

fn two_models() -> Vec<ModelSpec> {
    vec![lenet5(), tiny_net()]
}

#[test]
fn no_request_is_dropped_or_duplicated() {
    let models = two_models();
    let requests = workload(3, 120, models.len());
    let scheduler = Scheduler::new(FixedPolicy { max_batch: 6, max_wait_cycles: 40_000 });
    let batches = scheduler.form_batches(&requests, models.len());
    let mut ids: Vec<u64> = batches.iter().flat_map(|b| b.requests.iter().map(|r| r.id)).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..120).collect::<Vec<_>>());
    for b in &batches {
        assert!(b.requests.len() <= 6);
        assert!(b.requests.iter().all(|r| r.model == b.model));
    }
}

#[test]
fn per_model_fifo_fairness() {
    let models = two_models();
    let requests = workload(8, 150, models.len());
    let report = Fleet::new(ArchKind::S2taAw, 3).serve(&models, &requests);
    // Requests of one model must start (and ride in batches) in
    // arrival order: arrival order == id order for a generated stream.
    for model in models.iter().map(|m| m.name) {
        let of_model: Vec<_> = report.served_outcomes().filter(|o| o.model == model).collect();
        for pair in of_model.windows(2) {
            assert!(
                pair[0].start <= pair[1].start,
                "model {model}: request {} started after {}",
                pair[0].id,
                pair[1].id
            );
            assert!(pair[0].batch <= pair[1].batch, "batch order must follow arrival order");
        }
    }
}

#[test]
fn report_is_deterministic_for_a_seed() {
    let models = two_models();
    let requests = workload(21, 80, models.len());
    let fleet = Fleet::new(ArchKind::S2taAw, 4).with_weight_seed(5);
    assert_eq!(fleet.serve(&models, &requests), fleet.serve(&models, &requests));
}

#[test]
fn aggregate_metrics_are_worker_count_independent() {
    let models = two_models();
    let requests = workload(30, 100, models.len());
    let reports: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| Fleet::new(ArchKind::S2taAw, w).serve(&models, &requests))
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.total_events, reports[0].total_events);
        assert_eq!(r.batches, reports[0].batches);
        assert_eq!(r.outcomes.len(), reports[0].outcomes.len());
        // Same batch composition implies the same per-request batch ids.
        for (a, b) in r.served_outcomes().zip(reports[0].served_outcomes()) {
            assert_eq!(a.batch, b.batch);
        }
    }
}

#[test]
fn admission_bounded_drops_are_worker_count_independent() {
    let models = two_models();
    // Dense traffic against a lane bound below max_batch forces drops.
    let requests = WorkloadSpec::uniform(9, 150, 800.0, models.len()).generate();
    let reports: Vec<_> = [1usize, 3, 6]
        .iter()
        .map(|&w| {
            Fleet::new(ArchKind::S2taAw, w)
                .with_policy(FixedPolicy { max_batch: 8, max_wait_cycles: 20_000 })
                .with_queue_capacity(2)
                .serve(&models, &requests)
        })
        .collect();
    assert!(reports[0].dropped_count() > 0, "the workload must overload the bound");
    for r in &reports[1..] {
        assert_eq!(r.dropped_count(), reports[0].dropped_count());
        assert_eq!(r.total_events, reports[0].total_events);
        // The same requests drop regardless of fleet size.
        for (a, b) in r.outcomes.iter().zip(&reports[0].outcomes) {
            assert_eq!(a.is_served(), b.is_served(), "drop set must not depend on workers");
        }
    }
    // Served + dropped partition the issued stream.
    let r = &reports[0];
    assert_eq!(r.served_count() + r.dropped_count(), requests.len());
    assert!(r.drop_rate() > 0.0 && r.drop_rate() < 1.0);
}

#[test]
fn fleet_scales_throughput_on_backlogged_traffic() {
    // A dense burst (tiny interarrival) keeps every worker busy, so a
    // 4-worker fleet must finish materially sooner than a single
    // accelerator.
    let models = vec![lenet5()];
    let requests = WorkloadSpec::uniform(2, 64, 100.0, 1).generate();
    let one = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &requests);
    let four = Fleet::new(ArchKind::S2taAw, 4).serve(&models, &requests);
    let speedup = one.makespan_cycles as f64 / four.makespan_cycles as f64;
    assert!(speedup > 2.0, "4 workers only {speedup:.2}x faster than 1");
}

#[test]
fn closed_loop_serving_is_deterministic_and_self_limiting() {
    let models = two_models();
    let spec = ClosedLoopSpec::uniform(41, 5, 60, 10_000.0, models.len());
    let fleet = Fleet::new(ArchKind::S2taAw, 2);
    let mut p1 = FixedPolicy { max_batch: 4, max_wait_cycles: 25_000 };
    let mut p2 = p1;
    let a = fleet.serve_closed_loop(&models, &spec, &mut p1);
    let b = fleet.serve_closed_loop(&models, &spec, &mut p2);
    assert_eq!(a, b, "closed loop must reproduce byte-for-byte");
    assert_eq!(a.outcomes.len(), 60);
    // Closed loop self-limits: a client never has two requests in
    // flight, so the number of requests in the system never exceeds
    // the client count.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for o in a.served_outcomes() {
        events.push((o.arrival, 1));
        events.push((o.completion, -1));
    }
    events.sort_unstable();
    let mut open = 0i64;
    for (_, delta) in events {
        open += delta;
        assert!(open <= 5, "closed loop exceeded one outstanding request per client");
    }
}

/// The acceptance comparison: on the lenet5 + cifar10_convnet mix, the
/// SLO-aware policy must beat the default fixed policy's p99 at equal
/// or better goodput.
#[test]
fn slo_aware_policy_beats_default_fixed_policy_on_the_model_mix() {
    let models = vec![lenet5(), cifar10_convnet()];
    let spec = WorkloadSpec {
        seed: 77,
        requests: 96,
        mean_interarrival_cycles: 6_000.0,
        mix: vec![2.0, 1.0],
    };
    let requests = spec.generate();
    let fleet = Fleet::new(ArchKind::S2taAw, 2);
    let fixed = fleet.clone().with_policy(FixedPolicy::default()).serve(&models, &requests);
    let mut slo =
        SloAwarePolicy::new(60_000, BatchLimits { max_batch: 8, max_wait_cycles: 100_000 });
    let adaptive = fleet.serve_adaptive(&models, &requests, &mut slo);
    assert!(
        adaptive.p99_cycles() < fixed.p99_cycles(),
        "SLO-aware p99 {} must beat fixed p99 {}",
        adaptive.p99_cycles(),
        fixed.p99_cycles()
    );
    assert!(
        adaptive.makespan_cycles <= fixed.makespan_cycles,
        "SLO-aware makespan {} must not exceed fixed {} (goodput parity)",
        adaptive.makespan_cycles,
        fixed.makespan_cycles
    );
    assert_eq!(adaptive.served_count(), fixed.served_count());
}

/// Clone-fleet regression: the lane-based refactor must reproduce the
/// homogeneous-clone fleet **byte-for-byte**. The pinned numbers were
/// captured from the pre-refactor implementation (PR 2) on this exact
/// workload; any drift in batch formation, placement, event totals or
/// latency percentiles fails here.
///
/// Re-pinned once when the memory-bound DMA clamp switched from
/// truncating division to `div_ceil` (a sub-rate tail transfer now
/// costs its full bus cycle): the S2TA-AW runs gained a few cycles on
/// LeNet's FC layers (e.g. single-lane makespan 546_521 -> 546_523),
/// while SA-ZVCG is untouched (its FC byte totals divide evenly).
#[test]
fn homogeneous_fleet_matches_pre_refactor_golden() {
    let models = [lenet5(), cifar10_convnet()];
    let spec = WorkloadSpec {
        seed: 2024,
        requests: 120,
        mean_interarrival_cycles: 5_000.0,
        mix: vec![2.0, 1.0],
    };
    let requests = spec.generate();
    let policy = FixedPolicy { max_batch: 6, max_wait_cycles: 30_000 };

    let one = Fleet::new(ArchKind::S2taAw, 1).with_policy(policy).serve(&models, &requests);
    assert_eq!(one.batches, 28);
    assert_eq!(one.makespan_cycles, 546_523);
    assert_eq!(one.total_events.cycles, 282_672);
    assert_eq!(one.total_events.macs_active, 61_887_596);
    assert_eq!((one.p50_cycles(), one.p99_cycles()), (30_564, 49_996));
    assert_eq!(one.arch, "S2TA-AW", "homogeneous label must stay the bare kind");

    let three = Fleet::new(ArchKind::S2taAw, 3).with_policy(policy).serve(&models, &requests);
    assert_eq!(three.batches, 28);
    assert_eq!(three.makespan_cycles, 546_523);
    assert_eq!(three.total_events.cycles, 282_672);
    assert_eq!((three.p50_cycles(), three.p99_cycles()), (29_212, 42_164));

    let closed_spec = ClosedLoopSpec::uniform(7, 4, 60, 4_000.0, models.len());
    let mut p = policy;
    let closed = Fleet::new(ArchKind::S2taAw, 2).with_policy(policy).serve_closed_loop(
        &models,
        &closed_spec,
        &mut p,
    );
    assert_eq!(closed.batches, 27);
    assert_eq!(closed.makespan_cycles, 578_415);
    assert_eq!(closed.total_events.cycles, 156_691);
    assert_eq!((closed.p50_cycles(), closed.p99_cycles()), (34_945, 39_589));

    let zvcg = Fleet::new(ArchKind::SaZvcg, 2).with_policy(policy).serve(&models, &requests);
    assert_eq!(zvcg.batches, 28);
    assert_eq!(zvcg.makespan_cycles, 557_307);
    assert_eq!(zvcg.total_events.cycles, 615_559);
    assert_eq!(zvcg.p99_cycles(), 56_730);
}

/// Every homogeneous construction path builds the same fleet: the
/// clone constructor, the spec, and the explicit-accelerator form.
#[test]
fn clone_fleet_construction_paths_are_equivalent() {
    let models = two_models();
    let requests = workload(13, 60, models.len());
    let a = Fleet::new(ArchKind::S2taAw, 3).serve(&models, &requests);
    let b = Fleet::from_spec(FleetSpec::homogeneous(ArchKind::S2taAw, 3)).serve(&models, &requests);
    let c =
        Fleet::with_accelerator(Accelerator::preset(ArchKind::S2taAw), 3).serve(&models, &requests);
    assert_eq!(a, b, "spec-built clone fleet must match Fleet::new");
    assert_eq!(a, c, "explicit-accelerator clone fleet must match Fleet::new");
}

/// The acceptance comparison for heterogeneous serving: on a mixed
/// 2×S2TA-AW + 2×SA-ZVCG fleet, affinity-aware placement must beat
/// arch-blind earliest-free placement on **both** p99 latency and
/// energy per inference — the cost model routes batches onto the lanes
/// that finish them sooner, which on this fleet are also the lanes
/// that burn less energy per inference.
#[test]
fn mixed_fleet_affinity_beats_earliest_free() {
    let tech = TechParams::tsmc16();
    // The canonical scenario shared with the serving bench and the
    // serving_hetero example (the CI smoke gate) — one tuning point.
    let models = s2ta_bench::hetero_scenario::models();
    let requests = s2ta_bench::hetero_scenario::workload().generate();
    let mk = || {
        Fleet::from_spec(s2ta_bench::hetero_scenario::fleet_spec())
            .with_policy(s2ta_bench::hetero_scenario::policy())
    };
    let earliest_free = mk().serve(&models, &requests);
    let affinity = mk().with_placement(PlacementStrategy::Affinity).serve(&models, &requests);

    assert_eq!(earliest_free.served_count(), requests.len());
    assert_eq!(affinity.served_count(), requests.len());
    assert!(
        affinity.p99_cycles() < earliest_free.p99_cycles(),
        "affinity p99 {} must beat earliest-free p99 {}",
        affinity.p99_cycles(),
        earliest_free.p99_cycles()
    );
    assert!(
        affinity.uj_per_inference(&tech) < earliest_free.uj_per_inference(&tech),
        "affinity {:.3} uJ/inf must beat earliest-free {:.3} uJ/inf",
        affinity.uj_per_inference(&tech),
        earliest_free.uj_per_inference(&tech)
    );
    // The skew that produces the win must be visible in the per-lane
    // breakdown: affinity shifts requests toward the S2TA-AW lanes.
    let aw_requests = |r: &s2ta::serve::ServeReport| {
        r.workers.iter().filter(|w| w.arch == ArchKind::S2taAw).map(|w| w.requests).sum::<usize>()
    };
    assert!(
        aw_requests(&affinity) > aw_requests(&earliest_free),
        "affinity must route more work to the faster lanes"
    );
}

/// The acceptance comparison for layer-pipelined serving: on the
/// canonical deep-model mixed-fleet scenario (shared with the serving
/// bench and the `serving_pipeline` example), pipelined placement must
/// beat monolithic earliest-free placement on p99 by at least 1.1x at
/// no worse throughput.
#[test]
fn pipelined_beats_monolithic_on_the_deep_model_scenario() {
    let models = s2ta_bench::pipeline_scenario::models();
    let requests = s2ta_bench::pipeline_scenario::workload().generate();
    let monolithic = s2ta_bench::pipeline_scenario::monolithic_fleet().serve(&models, &requests);
    let pipelined = s2ta_bench::pipeline_scenario::pipelined_fleet().serve(&models, &requests);

    assert_eq!(monolithic.served_count(), requests.len());
    assert_eq!(pipelined.served_count(), requests.len());
    let p99_win = monolithic.p99_cycles() as f64 / pipelined.p99_cycles() as f64;
    assert!(
        p99_win >= 1.1,
        "pipelined p99 {} must beat monolithic p99 {} by >= 1.1x (got {p99_win:.2}x)",
        pipelined.p99_cycles(),
        monolithic.p99_cycles()
    );
    // Equal served counts, so throughput parity is makespan parity.
    assert!(
        pipelined.makespan_cycles <= monolithic.makespan_cycles,
        "pipelined makespan {} must not exceed monolithic {}",
        pipelined.makespan_cycles,
        monolithic.makespan_cycles
    );
    // The win comes from stage overlap across distinct lanes: the
    // report must show the cross-arch stage map.
    let stages = &pipelined.pipeline_stages;
    assert!(stages.len() >= 2, "the deep model must actually pipeline");
    let archs: std::collections::HashSet<ArchKind> = stages.iter().map(|s| s.arch).collect();
    assert!(archs.len() >= 2, "the pipeline must span both architectures: {stages:?}");
}

/// Pipelined execution on a homogeneous fleet is byte-identical in
/// event totals to monolithic execution for a single cold batch, for
/// every stage count — the serve-level face of the core `run_stage`
/// recomposition guarantee.
#[test]
fn pipelined_events_match_monolithic_for_every_partition() {
    let models = vec![s2ta::models::deep_convnet()];
    let requests = WorkloadSpec::uniform(13, 4, 10.0, 1).generate();
    let policy = FixedPolicy { max_batch: 4, max_wait_cycles: 1_000 };
    let mono = Fleet::new(ArchKind::S2taAw, 4).with_policy(policy).serve(&models, &requests);
    assert_eq!(mono.batches, 1);
    for stages in 1..=4 {
        let pipe = Fleet::new(ArchKind::S2taAw, 4)
            .with_policy(policy)
            .with_pipeline(stages)
            .serve(&models, &requests);
        assert_eq!(pipe.total_events, mono.total_events, "{stages} stages");
        assert_eq!(pipe.served_count(), mono.served_count());
    }
}

/// Per-model SLO classes: a tight class for the latency-critical model
/// must cut that model's p99 far below what one loose global class
/// gives it, while the heavy model stays inside its own (looser)
/// target.
#[test]
fn per_model_slo_classes_protect_the_tight_model() {
    let models = [lenet5(), cifar10_convnet()];
    let spec = WorkloadSpec::mixed(42, 160, 5_000.0, vec![2.0, 1.0]);
    let requests = spec.generate();
    let fleet = Fleet::new(ArchKind::S2taAw, 2);
    let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 100_000 };
    let (lenet_target, cifar_target) = (25_000u64, 120_000u64);

    // One global class, sized for the heavy model.
    let mut global = SloAwarePolicy::new(cifar_target, ceiling);
    let g = fleet.serve_adaptive(&models, &requests, &mut global);
    // Independent per-model classes: tight for LeNet, loose for CIFAR.
    let mut per_model = SloAwarePolicy::per_model(vec![
        SloClass::new(lenet_target).with_ceiling(ceiling),
        SloClass::new(cifar_target).with_ceiling(ceiling),
    ]);
    let p = fleet.serve_adaptive(&models, &requests, &mut per_model);

    let lenet_g = g.latency_percentile_for_model("LeNet-5", 99.0);
    let lenet_p = p.latency_percentile_for_model("LeNet-5", 99.0);
    assert!(lenet_p < lenet_g, "per-model class must cut LeNet p99: {lenet_p} vs global {lenet_g}");
    assert!(lenet_p <= lenet_target, "LeNet p99 {lenet_p} must meet its {lenet_target} target");
    let cifar_p = p.latency_percentile_for_model("CIFAR10-ConvNet", 99.0);
    assert!(cifar_p <= cifar_target, "CIFAR p99 {cifar_p} must stay inside its own target");
    assert_eq!(p.served_count(), g.served_count(), "class split must not lose requests");
    assert_eq!(p.policy, "slo-aware-per-model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached-plan execution is bit-exact with the uncached path, for
    /// any seed pair: running from a plan compiled at `weight_seed`
    /// with `act_seed == weight_seed` must equal `run_model`, which
    /// regenerates and recompresses everything per call.
    #[test]
    fn prop_cached_plans_are_bit_exact(
        seed in any::<u64>(),
        kind_idx in 0usize..3,
    ) {
        let kind = [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw][kind_idx];
        let acc = Accelerator::preset(kind);
        let model = lenet5();
        let plan = acc.plan_model(&model, seed);
        let planned = acc.run_model_planned(&plan, &model, seed);
        let direct = Accelerator::preset(kind).run_model(&model, seed);
        prop_assert_eq!(planned, direct);
    }

    /// Per-layer planned runs compose to the model run (streamed
    /// residency), so the serving fleet's layer-major loop cannot
    /// drift from the single-inference semantics.
    #[test]
    fn prop_layer_major_composition_matches_run_model(seed in any::<u64>()) {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let model = lenet5();
        let plan = acc.plan_model(&model, seed);
        let layers: Vec<_> = model
            .layers
            .iter()
            .zip(plan.layers())
            .map(|(l, lp)| acc.run_layer_planned(lp, l, seed, WeightResidency::Streamed))
            .collect();
        let composed = ModelReport::from_layers(model.name, "S2TA-AW", layers);
        prop_assert_eq!(composed, acc.run_model(&model, seed));
    }

    /// Placement invariants over random batch sets: no worker lane ever
    /// overlaps two batches, and no batch starts before its ready time.
    #[test]
    fn prop_placement_never_overlaps_and_respects_ready(
        seed in any::<u64>(),
        workers in 1usize..6,
    ) {
        // Derive a random batch set from the seed with a cheap LCG so
        // the case space is wide without a vec-strategy.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state ^ (state >> 32)
        };
        let n = (next() % 24) as usize;
        let mut id = 0u64;
        let batches: Vec<Batch> = (0..n)
            .map(|i| {
                let members = 1 + (next() % 5) as usize;
                let ready = next() % 50_000;
                let requests: Vec<Request> = (0..members)
                    .map(|_| {
                        let r = Request {
                            id,
                            model: 0,
                            arrival: ready.saturating_sub(next() % 1_000),
                            act_seed: next(),
                        };
                        id += 1;
                        r
                    })
                    .collect();
                Batch { id: i, model: 0, requests, ready }
            })
            .collect();
        let service: Vec<u64> = (0..n).map(|_| 1 + next() % 30_000).collect();
        let placements = Scheduler::default().place(&batches, &service, workers);

        for (p, b) in placements.iter().zip(&batches) {
            prop_assert!(p.start >= b.ready, "batch {} started before ready", b.id);
            prop_assert!(p.worker < workers);
            prop_assert_eq!(p.completion, p.start + service[p.batch]);
        }
        for w in 0..workers {
            let mut spans: Vec<(u64, u64)> = placements
                .iter()
                .filter(|p| p.worker == w)
                .map(|p| (p.start, p.completion))
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0, "worker {} overlapped", w);
            }
        }
    }

    /// Open-loop fixed-policy formation and the event-driven engine
    /// (satisfying the same fixed policy) agree for any seed.
    #[test]
    fn prop_engine_matches_vectorized_for_fixed_policies(seed in any::<u64>()) {
        let models = vec![lenet5()];
        let requests = WorkloadSpec::uniform(seed, 24, 25_000.0, 1).generate();
        let policy = FixedPolicy { max_batch: 3, max_wait_cycles: 40_000 };
        let fleet = Fleet::new(ArchKind::S2taAw, 2).with_policy(policy);
        let vectorized = fleet.serve(&models, &requests);
        let mut fixed = policy;
        let event_driven = fleet.serve_adaptive(&models, &requests, &mut fixed);
        prop_assert_eq!(vectorized, event_driven);
    }

    /// The same equivalence on a **mixed-architecture** fleet: the
    /// vectorized path's all-scopes speculative execution plus
    /// earliest-free placement replays the engine exactly, and the
    /// speculative fan-out is byte-identical at any host parallelism.
    #[test]
    fn prop_mixed_fleet_engine_matches_vectorized(seed in any::<u64>()) {
        let models = vec![lenet5()];
        let requests = WorkloadSpec::uniform(seed, 16, 20_000.0, 1).generate();
        let policy = FixedPolicy { max_batch: 3, max_wait_cycles: 40_000 };
        let spec = FleetSpec::mixed(&[(ArchKind::S2taAw, 1), (ArchKind::SaZvcg, 1)]);
        let fleet = Fleet::from_spec(spec).with_policy(policy);
        let vectorized = fleet.serve(&models, &requests);
        let mut fixed = policy;
        let event_driven = fleet.serve_adaptive(&models, &requests, &mut fixed);
        prop_assert_eq!(&vectorized, &event_driven);
        let serial = fleet.clone().with_host_parallelism(1).serve(&models, &requests);
        prop_assert_eq!(&vectorized, &serial);
    }
}
