//! Cross-crate serving tests: scheduler invariants, end-to-end
//! determinism of the fleet, and bit-exactness of the cached weight
//! plans against the uncached path.

use proptest::prelude::*;
use s2ta::core::{Accelerator, ArchKind, ModelReport, WeightResidency};
use s2ta::models::{lenet5, LayerSpec, ModelSpec};
use s2ta::serve::{BatchPolicy, Fleet, Scheduler, WorkloadSpec};
use s2ta::tensor::{GemmShape, LayerKind};

fn workload(seed: u64, n: usize, models: usize) -> Vec<s2ta::serve::Request> {
    WorkloadSpec::uniform(seed, n, 15_000.0, models).generate()
}

/// A second, structurally different model so multi-model scheduling is
/// exercised without the cost of a full zoo network.
fn tiny_net() -> ModelSpec {
    ModelSpec {
        name: "TinyNet",
        layers: vec![
            LayerSpec::new("conv1", LayerKind::Conv, GemmShape::new(8, 27, 196), 0.1, 0.05),
            LayerSpec::new("conv2", LayerKind::Conv, GemmShape::new(16, 72, 49), 0.5, 0.5),
            LayerSpec::new("fc", LayerKind::FullyConnected, GemmShape::new(10, 784, 1), 0.5, 0.7),
        ],
    }
}

fn two_models() -> Vec<ModelSpec> {
    vec![lenet5(), tiny_net()]
}

#[test]
fn no_request_is_dropped_or_duplicated() {
    let models = two_models();
    let requests = workload(3, 120, models.len());
    let scheduler = Scheduler::new(BatchPolicy { max_batch: 6, max_wait_cycles: 40_000 });
    let batches = scheduler.form_batches(&requests, models.len());
    let mut ids: Vec<u64> = batches.iter().flat_map(|b| b.requests.iter().map(|r| r.id)).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..120).collect::<Vec<_>>());
    for b in &batches {
        assert!(b.requests.len() <= 6);
        assert!(b.requests.iter().all(|r| r.model == b.model));
    }
}

#[test]
fn per_model_fifo_fairness() {
    let models = two_models();
    let requests = workload(8, 150, models.len());
    let report = Fleet::new(ArchKind::S2taAw, 3).serve(&models, &requests);
    // Requests of one model must start (and ride in batches) in
    // arrival order: arrival order == id order for a generated stream.
    for model in models.iter().map(|m| m.name) {
        let of_model: Vec<_> = report.outcomes.iter().filter(|o| o.model == model).collect();
        for pair in of_model.windows(2) {
            assert!(
                pair[0].start <= pair[1].start,
                "model {model}: request {} started after {}",
                pair[0].id,
                pair[1].id
            );
            assert!(pair[0].batch <= pair[1].batch, "batch order must follow arrival order");
        }
    }
}

#[test]
fn report_is_deterministic_for_a_seed() {
    let models = two_models();
    let requests = workload(21, 80, models.len());
    let fleet = Fleet::new(ArchKind::S2taAw, 4).with_weight_seed(5);
    assert_eq!(fleet.serve(&models, &requests), fleet.serve(&models, &requests));
}

#[test]
fn aggregate_metrics_are_worker_count_independent() {
    let models = two_models();
    let requests = workload(30, 100, models.len());
    let reports: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| Fleet::new(ArchKind::S2taAw, w).serve(&models, &requests))
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.total_events, reports[0].total_events);
        assert_eq!(r.batches, reports[0].batches);
        assert_eq!(r.outcomes.len(), reports[0].outcomes.len());
        // Same batch composition implies the same per-request batch ids.
        for (a, b) in r.outcomes.iter().zip(&reports[0].outcomes) {
            assert_eq!(a.batch, b.batch);
        }
    }
}

#[test]
fn fleet_scales_throughput_on_backlogged_traffic() {
    // A dense burst (tiny interarrival) keeps every worker busy, so a
    // 4-worker fleet must finish materially sooner than a single
    // accelerator.
    let models = vec![lenet5()];
    let requests = WorkloadSpec::uniform(2, 64, 100.0, 1).generate();
    let one = Fleet::new(ArchKind::S2taAw, 1).serve(&models, &requests);
    let four = Fleet::new(ArchKind::S2taAw, 4).serve(&models, &requests);
    let speedup = one.makespan_cycles as f64 / four.makespan_cycles as f64;
    assert!(speedup > 2.0, "4 workers only {speedup:.2}x faster than 1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached-plan execution is bit-exact with the uncached path, for
    /// any seed pair: running from a plan compiled at `weight_seed`
    /// with `act_seed == weight_seed` must equal `run_model`, which
    /// regenerates and recompresses everything per call.
    #[test]
    fn prop_cached_plans_are_bit_exact(
        seed in any::<u64>(),
        kind_idx in 0usize..3,
    ) {
        let kind = [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw][kind_idx];
        let acc = Accelerator::preset(kind);
        let model = lenet5();
        let plan = acc.plan_model(&model, seed);
        let planned = acc.run_model_planned(&plan, &model, seed);
        let direct = Accelerator::preset(kind).run_model(&model, seed);
        prop_assert_eq!(planned, direct);
    }

    /// Per-layer planned runs compose to the model run (streamed
    /// residency), so the serving fleet's layer-major loop cannot
    /// drift from the single-inference semantics.
    #[test]
    fn prop_layer_major_composition_matches_run_model(seed in any::<u64>()) {
        let acc = Accelerator::preset(ArchKind::S2taAw);
        let model = lenet5();
        let plan = acc.plan_model(&model, seed);
        let layers: Vec<_> = model
            .layers
            .iter()
            .zip(plan.layers())
            .map(|(l, lp)| acc.run_layer_planned(lp, l, seed, WeightResidency::Streamed))
            .collect();
        let composed = ModelReport::from_layers(model.name, "S2TA-AW", layers);
        prop_assert_eq!(composed, acc.run_model(&model, seed));
    }
}
