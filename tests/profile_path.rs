//! Acceptance tests for the profile-compiled execution path: the
//! matrix-free event path ([`ExecPath::Profiled`]) must be
//! **byte-identical** to the operand-materializing reference path
//! ([`ExecPath::Reference`]) on every architecture — goldens on the
//! zoo models, a property sweep over random shapes/sparsities, the
//! DAP-profile-vs-materialize equivalence, and the DMA ceil-division
//! boundary the profiled rollout fixed in both paths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta::core::{Accelerator, ActProfileCache, ArchKind, ExecPath, WeightResidency};
use s2ta::dbb::dap::{dap_col_profile, dap_matrix, LayerNnz};
use s2ta::models::{deep_convnet, lenet5, LayerSpec};
use s2ta::sim::ColStripProfile;
use s2ta::tensor::sparsity::SparseSpec;
use s2ta::tensor::{GemmShape, LayerKind};

/// Golden equivalence on the serving zoo: for every architecture, the
/// profile-compiled path reproduces the reference path's per-layer
/// [`s2ta::sim::EventCounts`] byte-for-byte on LeNet-5 and the 14-layer
/// Deep-ConvNet, with the activation seed distinct from the weight seed
/// (the serving case: one set of weights, many inputs).
#[test]
fn profiled_model_runs_match_reference_on_all_archs() {
    for model in [lenet5(), deep_convnet()] {
        for kind in ArchKind::ALL {
            let reference = Accelerator::preset(kind).with_exec_path(ExecPath::Reference);
            let profiled = Accelerator::preset(kind);
            let (weight_seed, act_seed) = (42, 7);
            let rplan = reference.plan_model(&model, weight_seed);
            let pplan = profiled.plan_model(&model, weight_seed);
            let r = reference.run_model_planned(&rplan, &model, act_seed);
            let p = profiled.run_model_planned(&pplan, &model, act_seed);
            assert_eq!(r, p, "{kind} on {}", model.name);
        }
    }
}

/// Both weight residencies agree per layer (the DMA clamp is the only
/// residency-sensitive term, and both paths price it identically).
#[test]
fn profiled_residency_variants_match_reference() {
    let model = lenet5();
    for kind in [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw] {
        let reference = Accelerator::preset(kind).with_exec_path(ExecPath::Reference);
        let profiled = Accelerator::preset(kind);
        let plan = profiled.plan_model(&model, 42);
        for (i, layer) in model.layers.iter().enumerate() {
            for residency in [WeightResidency::Streamed, WeightResidency::Resident] {
                let r = reference.run_layer_planned(&plan.layers()[i], layer, 9, residency);
                let p = profiled.run_layer_profiled(&plan.layers()[i], layer, 9, residency);
                assert_eq!(r, p, "{kind} layer {i} {residency:?}");
            }
        }
    }
}

/// The memory-bound DMA clamp rounds partial bus transfers **up**: a
/// sub-rate tail costs a full cycle, in both execution paths. The
/// SA-ZVCG FC layer below moves 32*101 weight bytes + 101 activation
/// bytes = 3333 bytes at 16 bytes/cycle: 209 cycles (208.3 rounded up),
/// where the old truncating division under-billed it at 208.
#[test]
fn dma_clamp_rounds_partial_transfers_up() {
    let fc = LayerSpec::new("fc", LayerKind::FullyConnected, GemmShape::new(32, 101, 1), 0.5, 0.5);
    let reference = Accelerator::preset(ArchKind::SaZvcg).with_exec_path(ExecPath::Reference);
    let profiled = Accelerator::preset(ArchKind::SaZvcg);
    assert_eq!(reference.config().dma_bytes_per_cycle, 16);
    let plan = reference.plan_layer(&fc, 1, 3);
    let r = reference.run_layer_planned(&plan, &fc, 3, WeightResidency::Streamed);
    let p = profiled.run_layer_profiled(&plan, &fc, 3, WeightResidency::Streamed);
    assert_eq!(r.events, p.events);
    // DMA-bound: (32*101 + 101).div_ceil(16) = 209 > the ~195 compute
    // cycles of the single 32x64 output tile.
    assert_eq!(r.events.cycles, (32 * 101 + 101u64).div_ceil(16));
    assert_eq!(r.events.cycles, 209, "ceil, not the truncated 208");
}

/// The fleet-shared activation-profile cache compiles each
/// `(layer, act seed)` scope once and serves every re-simulation.
#[test]
fn act_profile_cache_compiles_once_and_is_shared() {
    let cache = ActProfileCache::new();
    let aw = Accelerator::preset(ArchKind::S2taAw).sharing_act_profiles(cache.clone());
    let zv = Accelerator::preset(ArchKind::SaZvcg).sharing_act_profiles(cache.clone());
    let model = lenet5();
    let (aw_plan, zv_plan) = (aw.plan_model(&model, 42), zv.plan_model(&model, 42));
    assert!(cache.is_empty());
    aw.run_model_planned(&aw_plan, &model, 5);
    let cold = cache.stats();
    assert_eq!(cold.misses as usize, model.layers.len(), "one profile per layer");
    assert_eq!((cold.hits, cold.bypasses), (0, 0));
    // SA-ZVCG shares (tile_cols, bz) with S2TA-AW: same keys, all hits.
    zv.run_model_planned(&zv_plan, &model, 5);
    let shared = cache.stats().since(cold);
    assert_eq!(shared.misses, 0, "cross-arch reuse: no recompiles");
    assert_eq!(shared.hits as usize, model.layers.len());
    // A different activation seed is a different operand.
    aw.run_model_planned(&aw_plan, &model, 6);
    assert_eq!(cache.len(), 2 * model.layers.len());
}

/// Strategy inputs for one random layer execution.
fn random_layer(m: usize, k: usize, n: usize, wsp: f64, asp: f64, name_tag: u64) -> LayerSpec {
    LayerSpec::new(format!("prop{name_tag}"), LayerKind::Conv, GemmShape::new(m, k, n), wsp, asp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Profile-path events equal dense-path events for random operand
    /// shapes and sparsities on **every** architecture, for both the
    /// unpruned first-layer fall-back and pruned interior layers.
    #[test]
    fn prop_profiled_equals_reference_events(
        m in 1usize..48,
        k in 1usize..96,
        n in 1usize..48,
        wsp in 0.0f64..0.9,
        asp in 0.0f64..0.9,
        layer_index in 0usize..2,
        seed in any::<u64>(),
    ) {
        let layer = random_layer(m, k, n, wsp, asp, seed ^ (layer_index as u64));
        for kind in ArchKind::ALL {
            let reference = Accelerator::preset(kind).with_exec_path(ExecPath::Reference);
            let profiled = Accelerator::preset(kind);
            let plan = reference.plan_layer(&layer, layer_index, seed);
            let r = reference.run_layer_planned(&plan, &layer, seed ^ 0xA5, WeightResidency::Streamed);
            let p = profiled.run_layer_profiled(&plan, &layer, seed ^ 0xA5, WeightResidency::Streamed);
            prop_assert_eq!(r.events, p.events, "{} {}x{}x{}", kind, m, k, n);
        }
    }

    /// The direct DAP profile derivation equals materialize-then-profile
    /// (`dap_matrix` -> decompress -> `ColStripProfile::new`), events
    /// included, at the serving strip width.
    #[test]
    fn prop_dap_profile_equals_materialize_then_profile(
        rows in 1usize..64,
        cols in 1usize..96,
        sp in 0.0f64..0.95,
        nnz in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = SparseSpec::random(sp).matrix(rows, cols, &mut rng);
        let strip_cols = 64; // the SA / S2TA-AW tile width
        let direct = dap_col_profile(&m, 8, LayerNnz::Prune(nnz), strip_cols);
        let (dm, events) = dap_matrix(&m, 8, LayerNnz::Prune(nnz));
        let materialized = ColStripProfile::new(&dm.decompress(), strip_cols);
        prop_assert_eq!(
            ColStripProfile::from_flat(direct.counts, direct.strips, direct.k),
            materialized
        );
        prop_assert_eq!(direct.events, events);
        prop_assert_eq!(direct.config, dm.config());
    }
}
