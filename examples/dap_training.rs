//! DBB-aware training walkthrough (the paper's Sec. 8.1 recipe):
//! train a baseline, watch one-shot pruning hurt, recover with
//! progressive W-DBB pruning and DAP-in-the-loop fine-tuning, then
//! quantize to INT8 and check that the deployed weights really satisfy
//! the hardware's DBB bound.
//!
//! ```sh
//! cargo run --release --example dap_training
//! ```

use s2ta::dbb::{BlockAxis, DbbConfig, DbbMatrix};
use s2ta::nn::data::generate;
use s2ta::nn::mlp::Mlp;
use s2ta::nn::train::{accuracy, accuracy_int8, progressive_wdbb, train, TrainConfig};
use s2ta::tensor::quant::QuantParams;
use s2ta::tensor::Matrix;

fn main() {
    let (train_set, test_set) = generate(64, 12, 20, 30, 0.65, 11);
    let mut model = Mlp::new(64, 24, 12, 11);

    println!("=== 1. baseline training ===");
    train(&mut model, &train_set, &TrainConfig { epochs: 30, ..Default::default() });
    let base = accuracy(&model, &test_set);
    println!(
        "baseline accuracy: {:.1}% (INT8: {:.1}%)",
        base * 100.0,
        accuracy_int8(&model, &test_set) * 100.0
    );

    println!("\n=== 2. one-shot 2/8 W-DBB pruning (no fine-tuning) ===");
    let mut oneshot = model.clone();
    oneshot.set_wdbb_masks(2);
    println!(
        "one-shot accuracy: {:.1}%  <- the drop DBB causes",
        accuracy(&oneshot, &test_set) * 100.0
    );

    println!("\n=== 3. progressive pruning + fine-tuning (the paper's schedule) ===");
    let mut pruned = model.clone();
    progressive_wdbb(&mut pruned, &train_set, 2, 8, &TrainConfig::default());
    println!("fine-tuned accuracy: {:.1}%  <- recovered", accuracy(&pruned, &test_set) * 100.0);

    println!("\n=== 4. DAP-in-the-loop fine-tuning (A-DBB) ===");
    let mut dap_model = model.clone();
    dap_model.dap_nnz = Some(4);
    let pre = accuracy(&dap_model, &test_set);
    train(&mut dap_model, &train_set, &TrainConfig { epochs: 8, ..Default::default() });
    println!(
        "A-DBB 4/8: {:.1}% before fine-tuning -> {:.1}% after",
        pre * 100.0,
        accuracy(&dap_model, &test_set) * 100.0
    );

    println!("\n=== 5. deploy: quantize to INT8 and DBB-compress for the accelerator ===");
    let q = QuantParams::fit(pruned.w1.data());
    let w_int8: Vec<i8> = pruned.w1.data().iter().map(|&v| q.quantize(v)).collect();
    let w_matrix = Matrix::from_vec(pruned.w1.rows(), pruned.w1.cols(), w_int8);
    let compressed = DbbMatrix::compress(&w_matrix, BlockAxis::Rows, DbbConfig::new(2, 8))
        .expect("trained weights satisfy the 2/8 bound by construction");
    println!(
        "layer-1 weights: {} dense bytes -> {} compressed bytes ({:.2}x)",
        compressed.dense_bytes(),
        compressed.storage_bytes(),
        compressed.dense_bytes() as f64 / compressed.storage_bytes() as f64
    );
    println!("the compressed matrix feeds s2ta_sim::tpe directly — see the quickstart example");
}
