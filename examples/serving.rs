//! Serving demo: an open-loop request stream over two models, batched
//! and dispatched across a fleet of simulated S2TA-AW accelerators.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! The run is fully deterministic: the same seed reproduces the same
//! `ServeReport` byte-for-byte, and the aggregate (order-independent)
//! metrics — request count, batch set, total simulated events, energy —
//! are identical for any fleet size. The demo re-serves the stream to
//! demonstrate both properties.

use s2ta::core::ArchKind;
use s2ta::energy::TechParams;
use s2ta::models::{cifar10_convnet, lenet5};
use s2ta::serve::{BatchPolicy, Fleet, ServeReport, WorkloadSpec};

fn main() {
    let models = [lenet5(), cifar10_convnet()];
    let spec = WorkloadSpec {
        seed: 2022,
        requests: 240,
        mean_interarrival_cycles: 400.0,
        mix: vec![2.0, 1.0], // LeNet gets 2/3 of the traffic
    };
    let requests = spec.generate();
    let tech = TechParams::tsmc16();

    println!("== s2ta-serve demo ==");
    println!("workload: {spec}");
    println!("models: {} and {}", models[0], models[1]);
    println!();

    let fleet = Fleet::new(ArchKind::S2taAw, 6)
        .with_policy(BatchPolicy { max_batch: 8, max_wait_cycles: 50_000 });
    let report = fleet.serve(&models, &requests);
    print!("{}", report.summary(&tech));
    println!();

    // Determinism: same seed, same fleet -> identical report.
    let again = fleet.serve(&models, &requests);
    assert_eq!(report, again, "same seed must reproduce the identical report");
    println!("re-served with the same seed: reports identical");

    // Fleet-size independence of the aggregate metrics.
    let smaller = Fleet::new(ArchKind::S2taAw, 4)
        .with_policy(BatchPolicy { max_batch: 8, max_wait_cycles: 50_000 })
        .serve(&models, &requests);
    assert_eq!(report.total_events, smaller.total_events);
    assert_eq!(report.batches, smaller.batches);
    assert_eq!(report.outcomes.len(), smaller.outcomes.len());
    println!(
        "4-worker fleet: identical aggregate events/energy ({:.1} uJ), p99 {:.3} ms vs {:.3} ms",
        smaller.energy(&tech).total_pj() * 1e-6,
        ServeReport::cycles_to_ms(&tech, smaller.p99_cycles()),
        ServeReport::cycles_to_ms(&tech, report.p99_cycles()),
    );

    // What batching buys: the same traffic served batch-1.
    let unbatched = fleet.with_policy(BatchPolicy::unbatched()).serve(&models, &requests);
    println!(
        "batching win: {} -> {} kcycles of accelerator time ({:.1}% saved on weight streaming)",
        unbatched.total_events.cycles / 1_000,
        report.total_events.cycles / 1_000,
        (1.0 - report.total_events.cycles as f64 / unbatched.total_events.cycles as f64) * 100.0,
    );
}
