//! Serving demo: open-loop, closed-loop, and SLO-aware adaptive serving
//! of a two-model mix across a fleet of simulated S2TA-AW accelerators.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Every run is fully deterministic: the same seed reproduces the same
//! `ServeReport` byte-for-byte (for every client mode), and for the
//! open-loop fixed-policy path the aggregate (order-independent)
//! metrics — request count, batch set, drop set, total simulated
//! events, energy — are identical for any fleet size. The demo
//! re-serves the stream to demonstrate both properties, then shows
//! admission control shedding load, the SLO-aware policy trading batch
//! depth against tail latency (globally and with per-model SLO
//! classes), and the per-lane utilization breakdown. For mixed
//! SA/S2TA fleets with affinity placement, see the `serving_hetero`
//! example.

use s2ta::core::ArchKind;
use s2ta::energy::TechParams;
use s2ta::models::{cifar10_convnet, lenet5};
use s2ta::serve::{
    BatchLimits, ClosedLoopSpec, FixedPolicy, Fleet, ServeReport, SloAwarePolicy, SloClass,
    WorkloadSpec,
};

fn main() {
    let models = [lenet5(), cifar10_convnet()];
    let spec = WorkloadSpec {
        seed: 2022,
        requests: 240,
        mean_interarrival_cycles: 400.0,
        mix: vec![2.0, 1.0], // LeNet gets 2/3 of the traffic
    };
    let requests = spec.generate();
    let tech = TechParams::tsmc16();

    println!("== s2ta-serve demo ==");
    println!("workload: {spec}");
    println!("models: {} and {}", models[0], models[1]);
    println!();

    let policy = FixedPolicy { max_batch: 8, max_wait_cycles: 50_000 };
    let fleet = Fleet::new(ArchKind::S2taAw, 6).with_policy(policy);
    let report = fleet.serve(&models, &requests);
    print!("{}", report.summary(&tech));
    print!("{}", report.lane_breakdown(&tech));
    println!();

    // Determinism: same seed, same fleet -> identical report.
    let again = fleet.serve(&models, &requests);
    assert_eq!(report, again, "same seed must reproduce the identical report");
    println!("re-served with the same seed: reports identical");

    // Fleet-size independence of the aggregate metrics.
    let smaller = Fleet::new(ArchKind::S2taAw, 4).with_policy(policy).serve(&models, &requests);
    assert_eq!(report.total_events, smaller.total_events);
    assert_eq!(report.batches, smaller.batches);
    assert_eq!(report.outcomes.len(), smaller.outcomes.len());
    println!(
        "4-worker fleet: identical aggregate events/energy ({:.1} uJ), p99 {:.3} ms vs {:.3} ms",
        smaller.energy(&tech).total_pj() * 1e-6,
        ServeReport::cycles_to_ms(&tech, smaller.p99_cycles()),
        ServeReport::cycles_to_ms(&tech, report.p99_cycles()),
    );

    // What batching buys: the same traffic served batch-1.
    let unbatched = fleet.clone().with_policy(FixedPolicy::unbatched()).serve(&models, &requests);
    println!(
        "batching win: {} -> {} kcycles of accelerator time ({:.1}% saved on weight streaming)",
        unbatched.total_events.cycles / 1_000,
        report.total_events.cycles / 1_000,
        (1.0 - report.total_events.cycles as f64 / unbatched.total_events.cycles as f64) * 100.0,
    );
    println!();

    // Admission control: bound each model lane and shed the overload.
    let bounded = fleet.clone().with_queue_capacity(4).serve(&models, &requests);
    println!(
        "admission control (lane capacity 4): {} served, {} dropped ({:.1}% drop rate), \
         goodput {:.0} inf/s",
        bounded.served_count(),
        bounded.dropped_count(),
        bounded.drop_rate() * 100.0,
        bounded.goodput_ips(&tech),
    );
    println!();

    // SLO-aware adaptive batching against the same stream.
    let mut slo =
        SloAwarePolicy::new(40_000, BatchLimits { max_batch: 8, max_wait_cycles: 50_000 });
    let adaptive = fleet.serve_adaptive(&models, &requests, &mut slo);
    println!(
        "fixed policy:     p99 {:.3} ms, goodput {:.0} inf/s",
        ServeReport::cycles_to_ms(&tech, report.p99_cycles()),
        report.goodput_ips(&tech),
    );
    println!(
        "SLO-aware policy: p99 {:.3} ms, goodput {:.0} inf/s (target p99 {:.3} ms)",
        ServeReport::cycles_to_ms(&tech, adaptive.p99_cycles()),
        adaptive.goodput_ips(&tech),
        ServeReport::cycles_to_ms(&tech, slo.target_p99_cycles()),
    );
    println!();

    // Per-model SLO classes: a tight target for LeNet (the
    // latency-critical model), a loose one for the CIFAR convnet.
    let ceiling = BatchLimits { max_batch: 8, max_wait_cycles: 50_000 };
    let mut per_model = SloAwarePolicy::per_model(vec![
        SloClass::new(25_000).with_ceiling(ceiling),
        SloClass::new(120_000).with_ceiling(ceiling),
    ]);
    let classed = fleet.serve_adaptive(&models, &requests, &mut per_model);
    for (model, target) in [(models[0].name, 25_000u64), (models[1].name, 120_000)] {
        println!(
            "SLO class {model}: p99 {:.3} ms vs target {:.3} ms (global policy gave {:.3} ms)",
            ServeReport::cycles_to_ms(&tech, classed.latency_percentile_for_model(model, 99.0)),
            ServeReport::cycles_to_ms(&tech, target),
            ServeReport::cycles_to_ms(&tech, adaptive.latency_percentile_for_model(model, 99.0)),
        );
    }
    println!();

    // Closed-loop clients: offered load adapts to service capacity.
    let closed_spec = ClosedLoopSpec {
        seed: 2022,
        clients: 12,
        requests: 240,
        mean_think_cycles: 2_000.0,
        mix: vec![2.0, 1.0],
    };
    let mut closed_policy = FixedPolicy { max_batch: 4, max_wait_cycles: 10_000 };
    let closed = fleet.serve_closed_loop(&models, &closed_spec, &mut closed_policy);
    println!("closed loop: {closed_spec}");
    print!("{}", closed.summary(&tech));
    let mut closed_policy2 = closed_policy;
    assert_eq!(
        closed,
        fleet.serve_closed_loop(&models, &closed_spec, &mut closed_policy2),
        "closed loop must be deterministic for a fixed (seed, policy, workers)"
    );
    println!("closed loop re-served: reports identical");
}
