//! Mobile inference scenario: run MobileNetV1 end-to-end on every
//! evaluated architecture and print the per-architecture scoreboard plus
//! a per-layer drill-down for the winner — the workload the paper's
//! introduction motivates (low-power mobile vision).
//!
//! ```sh
//! cargo run --release --example mobile_inference
//! ```

use s2ta::core::{Accelerator, ArchKind};
use s2ta::energy::TechParams;
use s2ta::models::mobilenet_v1;

fn main() {
    let model = mobilenet_v1();
    let tech = TechParams::tsmc16();
    println!("{model}");
    println!();
    println!(
        "{:<14} {:>10} {:>11} {:>12} {:>9}",
        "architecture", "latency", "inf/s", "energy/inf", "TOPS/W"
    );

    let mut reports = Vec::new();
    for kind in ArchKind::ALL {
        let acc = Accelerator::preset(kind);
        let r = acc.run_model(&model, 42);
        println!(
            "{:<14} {:>8.2}ms {:>11.0} {:>9.1} uJ {:>9.2}",
            kind.to_string(),
            r.seconds(&tech) * 1e3,
            r.inferences_per_second(&tech),
            r.energy(&tech).total_uj(),
            r.tops_per_watt(&tech)
        );
        reports.push((kind, r));
    }

    let (_, ref aw) = reports.iter().find(|(k, _)| *k == ArchKind::S2taAw).expect("AW present");
    println!("\nper-layer drill-down on S2TA-AW (first 10 layers):");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10}",
        "layer", "MMAC", "cycles", "MAC util", "energy uJ"
    );
    for l in aw.layers.iter().take(10) {
        println!(
            "{:<10} {:>10.1} {:>10} {:>11.0}% {:>10.2}",
            l.name,
            l.macs as f64 / 1e6,
            l.events.cycles,
            l.events.mac_utilization() * 100.0,
            l.energy(&tech).total_uj()
        );
    }
    let (_, ref zvcg) = reports.iter().find(|(k, _)| *k == ArchKind::SaZvcg).expect("baseline");
    println!(
        "\nS2TA-AW vs SA-ZVCG on MobileNetV1: {:.2}x faster, {:.2}x less energy",
        aw.speedup_vs(zvcg),
        aw.energy_reduction_vs(zvcg, &tech)
    );
}
