//! Design-space exploration (the paper's Sec. 7 methodology): sweep
//! every 2048-MAC time-unrolled TPE geometry, print the area-vs-power
//! frontier, and locate the paper's 8x4x4_8x8 design point.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use s2ta::core::sweep::{sweep_aw, DesignPoint};
use s2ta::sim::ArrayGeometry;

fn main() {
    let (mut all, frontier) = sweep_aw(42);
    all.sort_by(|a, b| a.power_mw.partial_cmp(&b.power_mw).expect("finite"));

    println!("evaluated {} S2TA-AW geometries (a*c*m*n = 2048, b = 4, BZ = 8)", all.len());
    println!("\nlowest-power designs:");
    println!("{:<14} {:>9} {:>10} {:>9}", "geometry", "area mm2", "power mW", "cycles");
    for p in all.iter().take(10) {
        println!("{}", fmt_point(p));
    }

    println!("\narea-vs-power Pareto frontier:");
    for p in &frontier {
        println!("{}", fmt_point(p));
    }

    let paper = all
        .iter()
        .find(|p| p.geometry == ArrayGeometry::s2ta_aw())
        .expect("paper design point evaluated");
    let min_power = all.first().expect("non-empty").power_mw;
    println!("\npaper's pick 8x4x4_8x8: {}", fmt_point(paper));
    println!(
        "within {:.1}% of the sweep's minimum power — the paper selects it as the \
         lowest-power frontier design",
        (paper.power_mw / min_power - 1.0) * 100.0
    );
}

fn fmt_point(p: &DesignPoint) -> String {
    format!(
        "{:<14} {:>9.2} {:>10.1} {:>9}",
        p.geometry.to_string(),
        p.area_mm2,
        p.power_mw,
        p.cycles
    )
}
