//! Transformer workload: the I-BERT encoder FC sub-layers the paper
//! prunes with A/W-DBB (Table 3, note 4), run through the accelerator
//! family — including the paper's footnote-2 extension, the
//! *weight-unrolled* time-unrolled variant (variable W-DBB, fixed
//! A-DBB), which suits transformer FCs where weights prune aggressively
//! but activations stay dense.
//!
//! ```sh
//! cargo run --release --example transformer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta::core::{Accelerator, ArchKind};
use s2ta::dbb::dap::{dap_matrix, LayerNnz};
use s2ta::dbb::{prune, BlockAxis, DbbConfig, DbbMatrix};
use s2ta::energy::{EnergyBreakdown, TechParams};
use s2ta::models::ibert_encoder_fc;
use s2ta::sim::{tpe_wa, ArrayGeometry};
use s2ta::tensor::sparsity::SparseSpec;

fn main() {
    let model = ibert_encoder_fc(128);
    let tech = TechParams::tsmc16();
    println!("{model} (I-BERT base, sequence length 128)");

    // --- 1. the standard architecture family on the whole FC stack.
    println!("\n{:<14} {:>10} {:>12} {:>9}", "arch", "latency", "energy/inf", "TOPS/W");
    let mut reports = Vec::new();
    for kind in [ArchKind::SaZvcg, ArchKind::S2taW, ArchKind::S2taAw] {
        let r = Accelerator::preset(kind).run_model(&model, 42);
        println!(
            "{:<14} {:>8.2}ms {:>9.0} uJ {:>9.2}",
            kind.to_string(),
            r.seconds(&tech) * 1e3,
            r.energy(&tech).total_uj(),
            r.tops_per_watt(&tech)
        );
        reports.push((kind, r));
    }
    let zvcg = &reports[0].1;
    let aw = &reports[2].1;
    println!(
        "\nS2TA-AW vs SA-ZVCG on I-BERT FCs: {:.2}x faster, {:.2}x less energy",
        aw.speedup_vs(zvcg),
        aw.energy_reduction_vs(zvcg, &tech)
    );

    // --- 2. the weight-unrolled extension on one encoder FC1.
    // Transformer weights prune well (2/8 here); GELU-ish activations
    // stay fairly dense (fixed 4/8).
    println!("\nweight-unrolled variant (variable W-DBB, fixed 4/8 A-DBB) on enc0_fc1:");
    let mut rng = StdRng::seed_from_u64(7);
    let raw_w = SparseSpec::random(0.2).matrix(3072, 768, &mut rng);
    let raw_a = SparseSpec::random(0.3).matrix(768, 128, &mut rng);
    let (a44, _) = dap_matrix(&raw_a, 8, LayerNnz::Prune(4));
    let geom = ArrayGeometry::s2ta_aw();
    println!("{:<10} {:>10} {:>12} {:>10}", "W-DBB", "cycles", "energy uJ", "speedup");
    let mut base_cycles = 0u64;
    for nnz in [4usize, 3, 2, 1] {
        let pruned = prune::prune_matrix(&raw_w, BlockAxis::Rows, DbbConfig::new(nnz, 8));
        let wdbb = DbbMatrix::compress(&pruned, BlockAxis::Rows, DbbConfig::new(nnz, 8))
            .expect("pruned weights satisfy their bound");
        let ev = tpe_wa::run_wa_perf(&geom, &wdbb, &a44);
        if nnz == 4 {
            base_cycles = ev.cycles;
        }
        let e = EnergyBreakdown::of(&ev, &tech);
        println!(
            "{:>7}/8 {:>10} {:>12.1} {:>9.2}x",
            nnz,
            ev.cycles,
            e.total_uj(),
            base_cycles as f64 / ev.cycles as f64
        );
    }
    println!("\ncycles scale with the weight NNZ — the mirror image of S2TA-AW's Fig. 9d");
}
