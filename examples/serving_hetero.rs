//! Heterogeneous-fleet serving demo: a mixed 2×S2TA-AW + 2×SA-ZVCG
//! lane fleet serving one traffic stream, comparing arch-blind
//! earliest-free placement against affinity-aware placement (the
//! cost-model path that routes each batch to the lane minimizing its
//! predicted completion time, with per-`(arch, model)` service
//! estimates bootstrapped from the run's own completed batches).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serving_hetero
//! ```
//!
//! The run is fully deterministic, and the asserts at the bottom are
//! the CI smoke gate for heterogeneous serving: affinity must beat
//! earliest-free on both p99 latency and energy per inference on this
//! workload, and the host-pool parallelism must never leak into
//! simulated results.

use s2ta::energy::TechParams;
use s2ta::serve::{DiurnalSpec, Fleet, PlacementStrategy, RateSegment, ServeReport};
use s2ta_bench::hetero_scenario;

fn main() {
    let tech = TechParams::tsmc16();
    // The canonical scenario shared with the serving bench and the
    // acceptance test in tests/serving.rs — retune it in one place.
    let models = hetero_scenario::models();
    let spec = hetero_scenario::workload();
    let requests = spec.generate();
    let fleet_spec = hetero_scenario::fleet_spec();
    let policy = hetero_scenario::policy();

    println!("== s2ta-serve heterogeneous fleet demo ==");
    println!("workload: {spec}");
    println!("fleet: {} ({} lanes, shared plan cache)", fleet_spec.label(), fleet_spec.lanes());
    println!();

    let mk = || Fleet::from_spec(fleet_spec.clone()).with_policy(policy);
    let earliest_free = mk().serve(&models, &requests);
    let affinity = mk().with_placement(PlacementStrategy::Affinity).serve(&models, &requests);

    for (name, report) in [("earliest-free", &earliest_free), ("affinity", &affinity)] {
        println!("placement: {name}");
        print!("{}", report.summary(&tech));
        print!("{}", report.lane_breakdown(&tech));
        println!();
    }

    println!(
        "affinity vs earliest-free: {:.2}x lower p99, {:.2}x less energy/inf, {:.2}x makespan",
        earliest_free.p99_cycles() as f64 / affinity.p99_cycles() as f64,
        earliest_free.uj_per_inference(&tech) / affinity.uj_per_inference(&tech),
        affinity.makespan_cycles as f64 / earliest_free.makespan_cycles as f64,
    );

    // Determinism across host-pool sizes: the speculative parallel
    // execution is byte-identical to a serial engine.
    let serial = Fleet::from_spec(fleet_spec.clone())
        .with_policy(policy)
        .with_placement(PlacementStrategy::Affinity)
        .with_host_parallelism(1)
        .serve(&models, &requests);
    assert_eq!(affinity, serial, "host parallelism must never change simulated results");
    println!("re-served with a serial host pool: reports identical");

    // The CI smoke gate: the cost model must actually pay off here.
    assert!(
        affinity.p99_cycles() < earliest_free.p99_cycles(),
        "affinity p99 {} must beat earliest-free {}",
        affinity.p99_cycles(),
        earliest_free.p99_cycles()
    );
    assert!(
        affinity.uj_per_inference(&tech) < earliest_free.uj_per_inference(&tech),
        "affinity energy must beat earliest-free"
    );
    let _ = ServeReport::cycles_to_ms(&tech, affinity.p99_cycles());
    println!("affinity placement beats earliest-free on p99 and energy: OK");

    // Plan-cache effectiveness must be visible on the report: the one
    // DBB architecture (S2TA-AW) compiles each of the two models
    // exactly once (a miss each), every later execution hits the
    // shared memo, and the dense SA-ZVCG lanes are memoized too —
    // their compiles count as bypasses (no DBB pruning pipeline ran)
    // and their warm lookups as hits, so the bypass counter freezes
    // once the fleet is warm. The activation-profile cache (the
    // matrix-free event path's operand memo) rides alongside: on the
    // cold run the S2TA-AW and SA-ZVCG scopes share each
    // (layer, act seed) profile.
    for (name, report) in [("earliest-free", &earliest_free), ("affinity", &affinity)] {
        let cache = report.plan_cache;
        println!(
            "{name}: plan cache {} hits / {} misses / {} bypasses ({:.0}% hit rate); \
             act profiles {} hits / {} misses",
            cache.hits,
            cache.misses,
            cache.bypasses,
            cache.hit_rate() * 100.0,
            cache.acts.hits,
            cache.acts.misses,
        );
        assert_eq!(cache.misses, 2, "{name}: one compile per (DBB arch, model)");
        assert!(cache.hits > cache.misses, "{name}: the memo must be doing real work");
        assert!(cache.bypasses > 0, "{name}: cold dense-lane plans compile as bypasses");
        assert!(cache.acts.misses > 0, "{name}: cold run compiles act profiles");
        assert_eq!(cache.acts.bypasses, 0, "{name}: every act lookup is memoized");
    }
    // Earliest-free simulates every batch on both lane scopes, and the
    // S2TA-AW / SA-ZVCG design points share (tile_cols, bz): the second
    // scope's executions all hit the profiles the first compiled. (The
    // affinity engine's single-batch seals simulate only the chosen
    // scope, so its cold run is miss-only by design — its reuse shows
    // up in the steady-state re-serve below.)
    assert_eq!(
        earliest_free.plan_cache.acts.hits, earliest_free.plan_cache.acts.misses,
        "earliest-free: two shared-geometry scopes -> one hit per compile"
    );
    println!("fleet-wide weight-plan cache is effective: OK");

    // Steady state: re-serving the same traffic on the same fleet hits
    // both caches on every lookup — zero compiles, hits > misses, and
    // the bypass counter has stopped moving: the dense plans compiled
    // on the first batch are warm, so every dense lookup is now a hit.
    let warm_fleet = mk();
    let cold = warm_fleet.serve(&models, &requests);
    assert!(cold.plan_cache.bypasses > 0, "cold serve compiles the dense plans");
    let steady = warm_fleet.serve(&models, &requests);
    let cache = steady.plan_cache;
    println!(
        "steady-state re-serve: plan cache {} hits / {} misses / {} bypasses; \
         act profiles {} hits / {} misses",
        cache.hits, cache.misses, cache.bypasses, cache.acts.hits, cache.acts.misses,
    );
    assert_eq!(cache.misses, 0, "steady: no new weight-plan compiles");
    assert_eq!(cache.bypasses, 0, "steady: dense lookups are cache hits, not recompiles");
    assert_eq!(cache.acts.misses, 0, "steady: no new act-profile compiles");
    assert!(cache.acts.hits > cache.acts.misses, "steady: act cache is all hits");
    assert!(cache.hits > cache.misses, "steady: plan cache is all hits");
    println!("fleet-wide plan + activation-profile caches are effective: OK");

    // Bounded caches: serving under byte budgets smaller than the
    // zoo's cached footprint, so both LRUs must evict. The traffic
    // here is production-shaped — a bounded pool of recurring inputs
    // with an 8:1 model skew — so LeNet's act profiles stay hot and
    // resident while the rare CIFAR visits cycle through the leftover
    // budget. Since dense plans are memoized too, the plan budget is
    // sized to the hot model's plans (both arch scopes, ~118 KB) plus
    // change: LeNet's plans keep hitting while the CIFAR visits force
    // recompiles and evictions.
    // Evicted entries recompile byte-identically on next use: a
    // budget changes host time and the cache counters, never
    // simulated results (`ServeReport` equality excludes the cache
    // diagnostics precisely so this assert is exact). The bounded
    // fleet runs a serial host pool so the LRU touch order, and with
    // it the counters themselves, are deterministic.
    let zoo_requests = DiurnalSpec {
        seed: 77,
        requests: 400,
        segments: vec![RateSegment { duration_cycles: 100_000, mean_interarrival_cycles: 2_500.0 }],
        mix: vec![8.0, 1.0],
        act_seed_pool: 24,
    }
    .generate();
    let unbounded = Fleet::from_spec(fleet_spec.clone())
        .with_policy(policy)
        .with_host_parallelism(1)
        .serve(&models, &zoo_requests);
    let bounded_fleet = Fleet::from_spec(fleet_spec.clone())
        .with_policy(policy)
        .with_cache_budgets(160 << 10, 1 << 18)
        .with_host_parallelism(1);
    let _warm = bounded_fleet.serve(&models, &zoo_requests);
    let bounded = bounded_fleet.serve(&models, &zoo_requests);
    assert_eq!(bounded, unbounded, "a cache budget must never change simulated results");
    let cache = bounded.plan_cache;
    println!(
        "steady-state under budget: plan cache {} hits / {} misses / {} evictions; \
         act profiles {} hits / {} misses / {} evictions ({} bytes evicted)",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.acts.hits,
        cache.acts.misses,
        cache.acts.evictions,
        cache.acts.bytes_evicted,
    );
    assert!(cache.evictions > 0, "a plan budget below the two-plan zoo must evict");
    assert!(cache.hits > 0, "runs of same-model batches still reuse the resident plan");
    assert!(cache.acts.evictions > 0, "an act budget below the zoo must evict act profiles");
    assert!(cache.acts.bytes_evicted > 0, "evictions must release bytes");
    assert!(cache.acts.hits > cache.acts.misses, "hot-model act profiles must stay resident");
    assert!(
        cache.hits + cache.acts.hits > cache.misses + cache.acts.misses,
        "bounded steady state: hits must dominate misses across the caches"
    );
    println!("bounded caches evict under pressure and stay byte-identical: OK");
}
