//! Layer-pipelined serving demo: the 14-layer `Deep-ConvNet` on a
//! mixed 2×S2TA-AW + 2×SA-ZVCG fleet, comparing monolithic placement
//! (one lane serializes a whole inference) against SCNN-style layer
//! pipelining (`PlacementStrategy::Pipelined`): the model is
//! partitioned into stages sized to their lanes' architectures, each
//! stage pinned to a distinct lane, and stage `s` of batch `b`
//! overlaps stage `s+1` of batch `b-1`.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serving_pipeline
//! ```
//!
//! The run is fully deterministic, and the asserts at the bottom are
//! the CI smoke gate for pipelined serving: the pipeline must beat
//! monolithic earliest-free placement on p99 latency by >= 1.1x at no
//! worse throughput, span both architectures, and stay byte-identical
//! across host-pool sizes.

use s2ta::core::ArchKind;
use s2ta::energy::TechParams;
use s2ta::serve::ServeReport;
use s2ta_bench::pipeline_scenario;

fn main() {
    let tech = TechParams::tsmc16();
    // The canonical scenario shared with the serving bench and the
    // acceptance test in tests/serving.rs — retune it in one place.
    let models = pipeline_scenario::models();
    let spec = pipeline_scenario::workload();
    let requests = spec.generate();

    println!("== s2ta-serve layer-pipeline demo ==");
    println!("model: {} ({} layers)", models[0].name, models[0].layers.len());
    println!("workload: {spec}");
    println!(
        "fleet: {} ({} lanes), pipeline of {} stages",
        pipeline_scenario::fleet_spec().label(),
        pipeline_scenario::fleet_spec().lanes(),
        pipeline_scenario::STAGES
    );
    println!();

    let monolithic = pipeline_scenario::monolithic_fleet().serve(&models, &requests);
    let pipelined = pipeline_scenario::pipelined_fleet().serve(&models, &requests);

    for (name, report) in [("monolithic (earliest-free)", &monolithic), ("pipelined", &pipelined)] {
        println!("placement: {name}");
        print!("{}", report.summary(&tech));
        print!("{}", report.lane_breakdown(&tech));
        let stages = report.pipeline_breakdown();
        if !stages.is_empty() {
            println!("  pipeline stages:");
            print!("{stages}");
        }
        println!(
            "  plan cache: {} hits / {} misses / {} dense bypasses ({:.0}% hit rate)",
            report.plan_cache.hits,
            report.plan_cache.misses,
            report.plan_cache.bypasses,
            report.plan_cache.hit_rate() * 100.0
        );
        println!();
    }

    let p99_win = monolithic.p99_cycles() as f64 / pipelined.p99_cycles() as f64;
    println!(
        "pipelined vs monolithic: {:.2}x lower p99, {:.2}x throughput, {:.2}x makespan",
        p99_win,
        pipelined.throughput_ips(&tech) / monolithic.throughput_ips(&tech),
        pipelined.makespan_cycles as f64 / monolithic.makespan_cycles as f64,
    );

    // Determinism across host-pool sizes: simulated results never
    // depend on host threading.
    let serial =
        pipeline_scenario::pipelined_fleet().with_host_parallelism(1).serve(&models, &requests);
    assert_eq!(pipelined, serial, "host parallelism must never change simulated results");
    println!("re-served with a serial host pool: reports identical");

    // The CI smoke gate: the pipeline must actually pay off here.
    assert!(
        p99_win >= 1.1,
        "pipelined p99 {} must beat monolithic {} by >= 1.1x",
        pipelined.p99_cycles(),
        monolithic.p99_cycles()
    );
    assert!(
        pipelined.makespan_cycles <= monolithic.makespan_cycles,
        "pipelined throughput must not regress"
    );
    let archs: std::collections::HashSet<ArchKind> =
        pipelined.pipeline_stages.iter().map(|s| s.arch).collect();
    assert!(archs.len() >= 2, "the stage map must span both architectures");
    assert!(
        pipelined.plan_cache.hits > 0 && pipelined.plan_cache.misses >= 1,
        "the shared plan cache must be exercised"
    );
    let _ = ServeReport::cycles_to_ms(&tech, pipelined.p99_cycles());
    println!("layer pipeline beats monolithic placement on p99 at equal throughput: OK");
}
