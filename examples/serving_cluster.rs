//! Cluster-scale sharded serving demo: a 4-shard cluster of narrow
//! heterogeneous fleets behind the routing tier, serving a
//! seconds-scale prefix of the canonical diurnal stream under each
//! routing policy — random spray, join-shortest-queue, and
//! power-of-two-choices — plus an autoscaled run that tracks the day
//! curve with lane scaling.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serving_cluster
//! ```
//!
//! The run is fully deterministic, and the asserts are the CI smoke
//! gate for the cluster tier: the router must conserve the stream
//! (every request on exactly one shard, zero drops on unbounded
//! queues), global percentiles must come from merged per-request
//! samples, the shard-parallel driver must reproduce the serial
//! reference byte-identically on every policy, and the diurnal day
//! must exercise the autoscaler in both
//! directions. The canonical ~1M-request run with the p99 routing
//! gate lives in `cargo bench -p s2ta-bench --bench cluster`; this
//! demo reuses the exact same scenario module at a prefix scale, so
//! the informational policy comparison printed here is not gated.

use std::fs;
use std::path::Path;

use s2ta::energy::TechParams;
use s2ta::serve::{AutoscalePolicy, ClusterReport, RoutingPolicy, TraceConfig};
use s2ta_bench::{chaos_scenario, cluster_scenario as scenario};

fn main() {
    let tech = TechParams::tsmc16();
    let models = scenario::models();
    // The canonical cluster scenario, truncated from ~1M requests to a
    // seconds-scale prefix (~12 simulated day cycles).
    let mut spec = scenario::workload();
    spec.requests = 12_000;
    let requests = spec.generate();

    println!("== s2ta-serve cluster demo ==");
    println!("workload: {spec}");
    println!(
        "cluster: {} shards x [{}], shared plan/profile caches",
        scenario::SHARDS,
        scenario::shard_spec().label(),
    );
    println!();

    let mut p99s: Vec<(&'static str, u64)> = Vec::new();
    for routing in
        [RoutingPolicy::Random, RoutingPolicy::JoinShortestQueue, RoutingPolicy::PowerOfTwo]
    {
        let cluster = scenario::cluster(routing);
        let report = cluster.serve(&models, &requests);
        check_conservation(&report, requests.len());
        assert_eq!(report.dropped_count(), 0, "unbounded shard queues must not drop");
        // The shard-parallel driver is the default; it must be
        // byte-identical to the serial reference on every policy.
        assert_eq!(
            report,
            cluster.serve_serial(&models, &requests),
            "{}: parallel driver must reproduce the serial driver exactly",
            routing.label()
        );
        print!("{}", report.summary(&tech));
        println!();
        p99s.push((routing.label(), report.p99_cycles()));
    }

    let (_, random_p99) = p99s[0];
    for (label, p99) in &p99s[1..] {
        println!(
            "{label} vs random: {:.2}x global p99 (informational at this scale; \
             the bench gates the full run)",
            random_p99 as f64 / *p99 as f64
        );
    }
    println!();

    // The same day curve with the autoscaler on: lanes shed through
    // the valley, re-grow into the peak, and conservation still holds.
    // The backlog thresholds are tighter than the canonical bench
    // policy — the prefix carries ~1/80th of the full stream's load,
    // so the peaks that rebuild lanes are proportionally shallower.
    let autoscale = AutoscalePolicy {
        eval_interval_cycles: 50_000,
        scale_up_depth: 6,
        scale_down_depth: 1,
        min_lanes: 1,
    };
    let scaled = scenario::cluster(RoutingPolicy::PowerOfTwo)
        .with_autoscale(autoscale)
        .serve(&models, &requests);
    check_conservation(&scaled, requests.len());
    let ups = scaled.scale_events.iter().filter(|e| e.to_lanes > e.from_lanes).count();
    let downs = scaled.scale_events.iter().filter(|e| e.to_lanes < e.from_lanes).count();
    println!(
        "p2c + autoscale: {} scale events ({ups} up / {downs} down), p99 {} cycles",
        scaled.scale_events.len(),
        scaled.p99_cycles(),
    );
    assert!(ups > 0, "the diurnal peak must trigger scale-ups");
    assert!(downs > 0, "the diurnal valley must trigger scale-downs");
    println!("autoscaler tracks the diurnal curve in both directions: OK");
    println!();

    // The same autoscaled run with the flight recorder attached. The
    // recorder must be observability only — the report is byte-equal
    // to the untraced run — and the merged per-shard trace must come
    // out identical from the serial and shard-parallel drivers. The
    // exported artifacts feed the CI trace-validation step.
    let trace_cfg = TraceConfig { event_capacity: 1 << 17, metrics_interval_cycles: 10_000 };
    let traced_cluster = scenario::cluster(RoutingPolicy::PowerOfTwo)
        .with_autoscale(autoscale)
        .with_trace(trace_cfg);
    let traced = traced_cluster.serve(&models, &requests);
    check_conservation(&traced, requests.len());
    assert_eq!(scaled, traced, "attaching a recorder must not change the report");
    let trace = traced.merged_trace().expect("recorder attached");
    let serial =
        traced_cluster.serve_serial(&models, &requests).merged_trace().expect("recorder attached");
    assert_eq!(trace, serial, "serial and parallel drivers must trace identically");
    assert_eq!(trace.dropped_events(), 0, "ring capacity must hold the whole prefix run");
    assert_eq!(
        trace.completed_requests(),
        requests.len() as u64,
        "completed-batch events must conserve the stream"
    );
    let misses: u64 = traced.per_model().iter().map(|m| m.deadline_misses).sum();
    println!(
        "flight recorder: {} events, {} metrics samples, {} deadline-missed requests",
        trace.events().len(),
        trace.metrics().len(),
        misses,
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    fs::write(root.join("TRACE_cluster.json"), trace.chrome_trace_json())
        .expect("write TRACE_cluster.json");
    fs::write(root.join("METRICS_cluster.json"), trace.metrics_json())
        .expect("write METRICS_cluster.json");
    println!(
        "wrote TRACE_cluster.json (chrome://tracing / ui.perfetto.dev) + METRICS_cluster.json"
    );
    println!();

    // The same prefix under the chaos scenario: bounded admission,
    // random routing, and the seeded fault schedule scaled to this
    // run's horizon, with the full protection stack on (retries,
    // router failover, degraded-mode shedding). Conservation now
    // counts three ways, the fault machinery must actually fire, the
    // fault events land in the exported trace for CI to validate, and
    // the serial driver must still trace byte-identically.
    let horizon = scaled.makespan_cycles();
    let chaos_cluster = chaos_scenario::cluster()
        .with_faults(chaos_scenario::protected(horizon))
        .with_trace(trace_cfg);
    let chaos = chaos_cluster.serve(&models, &requests);
    assert_eq!(chaos.total_requests(), requests.len(), "chaos run must conserve the stream");
    assert_eq!(
        chaos.served_count() + chaos.dropped_count() + chaos.failed_count(),
        requests.len(),
        "served + dropped + failed must cover the stream"
    );
    let stats = chaos.fault_stats();
    assert!(stats.lane_crashes > 0, "the schedule must inject crashes at this scale");
    assert!(stats.failovers > 0, "outage arrivals must fail over to healthy shards");
    let chaos_trace = chaos.merged_trace().expect("recorder attached");
    let chaos_serial =
        chaos_cluster.serve_serial(&models, &requests).merged_trace().expect("recorder attached");
    assert_eq!(chaos_trace, chaos_serial, "fault-mode drivers must trace identically");
    println!(
        "chaos (protected): {} crashes, {} retries, {} failovers, {} failed, \
         availability {:.4}",
        stats.lane_crashes,
        stats.retries,
        stats.failovers,
        stats.failed,
        chaos.availability(),
    );
    fs::write(root.join("TRACE_chaos.json"), chaos_trace.chrome_trace_json())
        .expect("write TRACE_chaos.json");
    println!("wrote TRACE_chaos.json (fault events included)");
}

/// Every request lands on exactly one shard, the router's tallies
/// agree with the shard reports, and the global percentiles are
/// latencies some shard actually observed.
fn check_conservation(report: &ClusterReport, expected: usize) {
    assert_eq!(report.total_requests(), expected, "router must conserve the stream");
    assert_eq!(report.routed.iter().sum::<usize>(), expected);
    let mut ids: Vec<u64> =
        report.shards.iter().flat_map(|s| s.outcomes.iter().map(|o| o.id())).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..expected as u64).collect::<Vec<u64>>(), "every id exactly once");
    let mut all: Vec<u64> = report
        .shards
        .iter()
        .flat_map(|s| s.served_outcomes().map(|r| r.latency_cycles()))
        .collect();
    all.sort_unstable();
    for pct in [50.0, 95.0, 99.0] {
        let sample = report.latency_percentile_cycles(pct);
        assert!(all.contains(&sample), "p{pct} must be an observed merged sample");
    }
}
