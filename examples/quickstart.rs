//! Quickstart: compress operands to DBB, run one convolution on the
//! S2TA-AW accelerator, and compare it with the SA-ZVCG baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use s2ta::core::{Accelerator, ArchKind};
use s2ta::dbb::dap::LayerNnz;
use s2ta::dbb::{prune, DbbConfig, DbbVector};
use s2ta::energy::{EnergyBreakdown, TechParams};
use s2ta::tensor::sparsity::SparseSpec;
use s2ta::tensor::ConvShape;

fn main() {
    // --- 1. DBB in a nutshell: bound the non-zeros per 8-element block.
    let data: Vec<i8> = vec![0, 9, 0, 4, 3, 0, 5, 0];
    let block = DbbVector::compress(&data, DbbConfig::new(4, 8)).expect("4/8-satisfiable");
    println!("dense block   : {data:?}");
    println!(
        "DBB compressed: values {:?}, mask {:#010b}",
        block.blocks()[0].values(),
        block.blocks()[0].mask()
    );
    println!("storage       : {} bytes (vs 8 dense)\n", block.storage_bytes());

    // --- 2. A realistic mid-network conv layer, lowered to GEMM.
    let shape = ConvShape::new(256, 128, 16, 16, 3, 3, 1, 1);
    let gemm = shape.gemm();
    println!("conv layer {shape} lowers to GEMM {gemm} ({:.1} MMAC)", gemm.macs() as f64 / 1e6);

    // Synthetic operands at mobile-typical sparsity.
    let mut rng = StdRng::seed_from_u64(42);
    let weights = {
        let raw = SparseSpec::random(0.5).matrix(gemm.m, gemm.k, &mut rng);
        // Offline W-DBB pruning (keeps the 4 largest magnitudes per block).
        prune::prune_matrix(&raw, s2ta::dbb::BlockAxis::Rows, DbbConfig::new(4, 8))
    };
    let acts = SparseSpec::random(0.625).matrix(gemm.k, gemm.n, &mut rng);

    // --- 3. Run it on both architectures.
    let tech = TechParams::tsmc16();
    let zvcg = Accelerator::preset(ArchKind::SaZvcg);
    let aw = Accelerator::preset(ArchKind::S2taAw);
    let ev_zvcg = zvcg.run_gemm(&weights, &acts, LayerNnz::Dense, false);
    let ev_aw = aw.run_gemm(&weights, &acts, LayerNnz::Prune(3), false);

    let e_zvcg = EnergyBreakdown::of(&ev_zvcg, &tech);
    let e_aw = EnergyBreakdown::of(&ev_aw, &tech);
    println!("\nSA-ZVCG : {} cycles, {e_zvcg}", ev_zvcg.cycles);
    println!("S2TA-AW : {} cycles, {e_aw}", ev_aw.cycles);
    println!(
        "\nS2TA-AW wins: {:.2}x speedup, {:.2}x energy reduction",
        ev_zvcg.cycles as f64 / ev_aw.cycles as f64,
        e_zvcg.total_pj() / e_aw.total_pj()
    );
}
